"""Tests for scaling functions, the selection framework and scaled-model transforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scaled_model import ScalingStep, transform_feature_dict, transform_targets
from repro.core.scaling import (
    SCALING_FUNCTIONS,
    TWO_INPUT_SCALING_FUNCTIONS,
    ScalingFunctionSelector,
    default_scaling_function,
    make_scaling_function,
)
from repro.features.definitions import OperatorFamily


class TestScalingFunctions:
    def test_linear_is_identity(self):
        assert SCALING_FUNCTIONS["linear"](7.0) == pytest.approx(7.0)

    def test_nlogn_value(self):
        assert SCALING_FUNCTIONS["nlogn"](8.0) == pytest.approx(8.0 * np.log2(9.0))

    def test_quadratic_and_sqrt(self):
        assert SCALING_FUNCTIONS["quadratic"](3.0) == pytest.approx(9.0)
        assert SCALING_FUNCTIONS["sqrt"](49.0) == pytest.approx(7.0)

    def test_two_input_functions(self):
        assert TWO_INPUT_SCALING_FUNCTIONS["sum"](2.0, 3.0) == pytest.approx(5.0)
        assert TWO_INPUT_SCALING_FUNCTIONS["product"](2.0, 3.0) == pytest.approx(6.0)
        assert TWO_INPUT_SCALING_FUNCTIONS["outer_log_inner"](4.0, 7.0) == pytest.approx(
            4.0 * np.log2(8.0)
        )

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            SCALING_FUNCTIONS["linear"](1.0, 2.0)
        with pytest.raises(ValueError):
            TWO_INPUT_SCALING_FUNCTIONS["sum"](1.0)

    def test_lookup_by_name(self):
        assert make_scaling_function("nlogn").name == "nlogn"
        assert make_scaling_function("outer_log_inner").arity == 2
        with pytest.raises(ValueError):
            make_scaling_function("cubic")

    def test_vectorised_evaluation(self):
        values = np.array([1.0, 2.0, 4.0])
        assert SCALING_FUNCTIONS["linear"](values).shape == (3,)


class TestDefaultScalingChoices:
    def test_sort_cardinality_scales_nlogn(self):
        assert default_scaling_function(OperatorFamily.SORT, "CIN1", "cpu").name == "nlogn"

    def test_seek_table_size_scales_logarithmically(self):
        assert default_scaling_function(OperatorFamily.SEEK, "TSIZE", "cpu").name == "log"

    def test_filter_defaults_to_linear(self):
        assert default_scaling_function(OperatorFamily.FILTER, "CIN1", "cpu").name == "linear"

    def test_io_always_linear(self):
        assert default_scaling_function(OperatorFamily.SORT, "CIN1", "io").name == "linear"


class TestSelectionFramework:
    def test_recovers_nlogn_curve(self):
        x = np.linspace(1_000, 500_000, 40)
        y = 0.05 * x * np.log2(x)
        best = ScalingFunctionSelector().select(x, y)
        assert best.function.name == "nlogn"
        assert best.alpha == pytest.approx(0.05, rel=0.15)

    def test_recovers_linear_curve(self):
        x = np.linspace(10, 10_000, 30)
        best = ScalingFunctionSelector().select(x, 3.0 * x)
        assert best.function.name == "linear"

    def test_recovers_quadratic_curve(self):
        x = np.linspace(10, 1_000, 30)
        best = ScalingFunctionSelector().select(x, 0.2 * x**2)
        assert best.function.name == "quadratic"

    def test_recovers_two_input_product_form(self):
        rng = np.random.default_rng(0)
        pairs = np.column_stack([rng.uniform(10, 1e4, 50), rng.uniform(10, 1e6, 50)])
        y = 0.3 * pairs[:, 0] * np.log2(pairs[:, 1] + 1)
        selector = ScalingFunctionSelector(list(TWO_INPUT_SCALING_FUNCTIONS.values()))
        assert selector.select(pairs, y).function.name == "outer_log_inner"

    def test_fit_all_sorted_by_error(self):
        x = np.linspace(1, 100, 20)
        fits = ScalingFunctionSelector().fit_all(x, 2.0 * x)
        errors = [f.l2_error for f in fits]
        assert errors == sorted(errors)

    def test_two_input_shape_validation(self):
        selector = ScalingFunctionSelector([TWO_INPUT_SCALING_FUNCTIONS["sum"]])
        with pytest.raises(ValueError):
            selector.select(np.linspace(0, 1, 5), np.linspace(0, 1, 5))


class TestScaledModelTransforms:
    def test_scaling_feature_removed(self):
        step = ScalingStep("CIN1", SCALING_FUNCTIONS["linear"])
        transformed = transform_feature_dict({"CIN1": 100.0, "SOUTAVG": 8.0}, (step,))
        assert "CIN1" not in transformed
        assert transformed["SOUTAVG"] == 8.0

    def test_dependent_features_normalised(self):
        step = ScalingStep("CIN1", SCALING_FUNCTIONS["linear"])
        values = {"CIN1": 100.0, "SINTOT1": 5_000.0, "SINAVG1": 50.0}
        transformed = transform_feature_dict(values, (step,))
        assert transformed["SINTOT1"] == pytest.approx(50.0)  # divided by CIN1
        assert transformed["SINAVG1"] == pytest.approx(50.0)  # independent, untouched

    def test_multi_step_transforms_apply_sequentially(self):
        steps = (
            ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),
            ScalingStep("SINAVG1", SCALING_FUNCTIONS["linear"]),
        )
        values = {"CIN1": 10.0, "SINAVG1": 4.0, "SINTOT1": 40.0}
        transformed = transform_feature_dict(values, steps)
        assert "CIN1" not in transformed and "SINAVG1" not in transformed
        # SINTOT1 divided by CIN1 then by SINAVG1.
        assert transformed["SINTOT1"] == pytest.approx(1.0)

    def test_original_dict_not_modified(self):
        step = ScalingStep("CIN1", SCALING_FUNCTIONS["linear"])
        values = {"CIN1": 10.0, "SINTOT1": 100.0}
        transform_feature_dict(values, (step,))
        assert values == {"CIN1": 10.0, "SINTOT1": 100.0}

    def test_targets_divided_by_scale_factor(self):
        step = ScalingStep("CIN1", SCALING_FUNCTIONS["linear"])
        rows = [{"CIN1": 10.0}, {"CIN1": 100.0}]
        scaled = transform_targets(rows, np.array([50.0, 500.0]), (step,))
        assert scaled == pytest.approx([5.0, 5.0])

    def test_no_steps_is_identity(self):
        rows = [{"CIN1": 10.0}]
        targets = np.array([3.0])
        assert transform_targets(rows, targets, ()) == pytest.approx(targets)

    def test_zero_feature_value_is_guarded(self):
        step = ScalingStep("CIN1", SCALING_FUNCTIONS["linear"])
        scaled = transform_targets([{"CIN1": 0.0}], np.array([7.0]), (step,))
        assert np.isfinite(scaled).all()


@settings(max_examples=30, deadline=None)
@given(value=st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
def test_scaling_functions_are_nonnegative_and_monotone(value):
    """Property: every single-input scaling function is non-negative and
    non-decreasing (required for the monotonicity argument in Section 6.3)."""
    for function in SCALING_FUNCTIONS.values():
        low = float(function(value))
        high = float(function(value * 2.0 + 1.0))
        assert low >= 0.0
        assert high >= low - 1e-9
