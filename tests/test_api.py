"""Tests for the unified Estimator protocol, registry and EstimationService."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    EstimationService,
    Estimator,
    TechniqueAdapter,
    TrainingCorpus,
    available_estimators,
    featureize_plan,
    load_artifact,
    make_estimator,
    make_technique,
)
from repro.api.adapters import ADAPTER_MAGIC
from repro.api.registry import DEFAULT_LINEUP, get_spec, standard_lineup
from repro.baselines import standard_techniques
from repro.core import ResourceEstimator
from repro.core.serialization import EstimatorCodecError
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig
from repro.ml.transform_regression import TransformConfig


@pytest.fixture(scope="module")
def corpus(workload_split):
    train, _ = workload_split
    return TrainingCorpus(queries=tuple(train), mode=FeatureMode.EXACT, resources=("cpu",))


@pytest.fixture(scope="module")
def test_queries_and_plans(workload_split):
    _, test = workload_split
    return test, [q.plan for q in test]


class TestRegistry:
    def test_all_techniques_registered(self):
        assert set(available_estimators()) == {
            "opt", "akdere", "linear", "mart", "svm", "regtree", "scaling",
        }
        assert tuple(DEFAULT_LINEUP) == (
            "opt", "akdere", "linear", "mart", "svm", "regtree", "scaling",
        )

    def test_unknown_key_lists_known_keys(self):
        with pytest.raises(KeyError, match="scaling"):
            make_technique("gradient_descent")
        with pytest.raises(KeyError):
            get_spec("")

    def test_make_technique_passes_options(self):
        svm = make_technique("svm", kernel="rbf", gamma=0.05)
        assert svm.name == "SVM(RBF)"
        mart = make_technique("mart", mart_config=MARTConfig(n_iterations=7))
        assert mart.mart_config.n_iterations == 7

    def test_standard_techniques_routes_through_registry(self):
        """The harness line-up and the registry line-up are the same objects."""
        config = MARTConfig(n_iterations=5)
        names = [t.name for t in standard_techniques(mart_config=config)]
        assert names == [t.name for t in standard_lineup(mart_config=config)]
        assert names == ["OPT", "[8]", "LINEAR", "MART", "SVM(POLY)", "REGTREE", "SCALING"]

    def test_every_key_constructs_protocol_estimator(self):
        for key in available_estimators():
            estimator = make_estimator(key)
            assert isinstance(estimator, Estimator), key
            assert isinstance(estimator.name, str) and estimator.name

    def test_scaling_estimator_is_native(self):
        assert isinstance(make_estimator("scaling"), ResourceEstimator)


class TestTrainingCorpus:
    def test_from_workload(self, small_workload):
        corpus = TrainingCorpus.from_workload(small_workload, resources=("cpu",))
        assert corpus.n_queries == len(small_workload.queries)
        assert corpus.n_operators == sum(len(q.operators) for q in small_workload)
        assert corpus.name == small_workload.name

    def test_requires_a_resource(self, workload_split):
        train, _ = workload_split
        with pytest.raises(ValueError):
            TrainingCorpus(queries=tuple(train), resources=())


class TestFeatureizePlan:
    def test_matches_observed_features(self, workload_split):
        """Featureised plans carry the same features the runner observed."""
        _, test = workload_split
        observed = test[0]
        virtual = featureize_plan(observed.plan)
        assert len(virtual.operators) == len(observed.operators)
        by_node = {op.node_id: op for op in observed.operators}
        for op in virtual.operators:
            assert op.exact_features == by_node[op.node_id].exact_features
            assert op.estimated_features == by_node[op.node_id].estimated_features
            assert op.actual_cpu_us == 0.0 and op.actual_logical_io == 0.0


class TestTechniqueAdapter:
    @pytest.fixture(scope="class")
    def fitted_linear(self, corpus):
        return make_estimator("linear").fit(corpus)

    def test_predicts_like_underlying_baseline(self, corpus, test_queries_and_plans):
        test, _ = test_queries_and_plans
        adapter = make_estimator("opt").fit(corpus)
        direct = make_technique("opt").fit(list(corpus.queries), "cpu", corpus.mode)
        assert np.array_equal(adapter.predict_batch(test, "cpu"), direct.predict_queries(test))

    def test_accepts_bare_plans(self, fitted_linear, test_queries_and_plans):
        test, plans = test_queries_and_plans
        from_queries = fitted_linear.predict_batch(test, "cpu")
        from_plans = fitted_linear.predict_batch(plans, "cpu")
        # Observed queries list operators in execution order, featureised
        # plans in pre-order; summation order differs by at most rounding.
        assert from_plans == pytest.approx(from_queries, rel=1e-12)
        assert np.all(np.isfinite(from_plans)) and np.all(from_plans >= 0.0)

    def test_unfitted_resource_rejected(self, fitted_linear, test_queries_and_plans):
        _, plans = test_queries_and_plans
        with pytest.raises(RuntimeError, match="io"):
            fitted_linear.predict_batch(plans, "io")

    @pytest.mark.parametrize(
        "key,options",
        [
            ("linear", {}),
            ("opt", {}),
            ("mart", {"mart_config": MARTConfig(n_iterations=10, max_leaves=6)}),
            ("regtree", {"config": TransformConfig(n_iterations=8, max_leaves=4)}),
        ],
    )
    def test_save_load_round_trip(self, corpus, test_queries_and_plans, tmp_path, key, options):
        """Loaded adapters serve identical estimates (incl. REGTREE leaf models)."""
        _, plans = test_queries_and_plans
        adapter = make_estimator(key, **options).fit(corpus)
        before = adapter.predict_batch(plans, "cpu")
        path = tmp_path / f"{key}.bin"
        adapter.save(path)
        restored = TechniqueAdapter.load(path)
        assert restored.name == adapter.name
        assert restored.resources == ("cpu",)
        assert np.array_equal(restored.predict_batch(plans, "cpu"), before)

    def test_load_dispatch(self, corpus, trained_estimator, tmp_path):
        """load_artifact routes on magic bytes: native codec vs adapter pickle."""
        adapter_path = tmp_path / "adapter.bin"
        make_estimator("opt").fit(corpus).save(adapter_path)
        native_path = tmp_path / "native.bin"
        trained_estimator.save(native_path)
        assert isinstance(load_artifact(adapter_path), TechniqueAdapter)
        assert isinstance(load_artifact(native_path), ResourceEstimator)
        junk = tmp_path / "junk.bin"
        junk.write_bytes(b"\x01" * 32)
        with pytest.raises(EstimatorCodecError):
            load_artifact(junk)
        # Missing files surface as codec errors too, on every load entry point.
        with pytest.raises(EstimatorCodecError):
            load_artifact(tmp_path / "missing.bin")
        with pytest.raises(EstimatorCodecError):
            TechniqueAdapter.load(tmp_path / "missing.bin")

    def test_unregistered_key_fails_as_codec_error(self, corpus, tmp_path):
        """An artifact naming an unknown registry key raises the documented
        EstimatorCodecError, not a bare KeyError."""
        import pickle

        from repro.core.serialization import pack_envelope
        from repro.api.adapters import ADAPTER_VERSION

        payload = pickle.dumps(  # repro: noqa[REPRO-R3] — crafting a corrupt artifact
            {"key": "no_such_technique", "options": {}, "name": "X",
             "mode": "exact", "resources": ("cpu",), "fitted": {}},
        )
        path = tmp_path / "unknown.bin"
        path.write_bytes(pack_envelope(ADAPTER_MAGIC, ADAPTER_VERSION, payload))
        with pytest.raises(EstimatorCodecError, match="not registered"):
            TechniqueAdapter.load(path)

    def test_corrupt_adapter_artifact_rejected(self, corpus, tmp_path):
        path = tmp_path / "adapter.bin"
        make_estimator("opt").fit(corpus).save(path)
        data = bytearray(path.read_bytes())
        assert data.startswith(ADAPTER_MAGIC)
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(EstimatorCodecError):
            TechniqueAdapter.load(path)


class TestResourceEstimatorProtocol:
    def test_satisfies_protocol(self, trained_estimator):
        assert isinstance(trained_estimator, Estimator)
        assert trained_estimator.name == "SCALING"

    def test_fit_from_corpus(self, workload_split, tiny_trainer_config, test_queries_and_plans):
        train, _ = workload_split
        _, plans = test_queries_and_plans
        corpus = TrainingCorpus(queries=tuple(train), resources=("cpu",))
        estimator = ResourceEstimator(trainer_config=tiny_trainer_config).fit(corpus)
        assert estimator.resources == ("cpu",)
        totals = estimator.predict_batch(plans, "cpu")
        assert totals.shape == (len(plans),)
        assert np.all(totals >= 0.0)

    def test_predict_batch_matches_estimate_workload(
        self, trained_estimator, test_queries_and_plans
    ):
        test, plans = test_queries_and_plans
        expected = trained_estimator.estimate_workload(plans, ("cpu",)).query_totals("cpu")
        assert np.array_equal(trained_estimator.predict_batch(plans, "cpu"), expected)
        # Observed queries are unwrapped to their plans.
        assert np.array_equal(trained_estimator.predict_batch(test, "cpu"), expected)


class TestEstimationService:
    def test_parity_with_estimator(self, trained_estimator, test_queries_and_plans):
        """Cached or not, the service must be bit-identical to the estimator."""
        _, plans = test_queries_and_plans
        service = EstimationService(trained_estimator)
        for _ in range(2):  # second pass is fully cache-hit
            served = service.estimate_workload(plans)
            direct = trained_estimator.estimate_workload(plans)
            for resource in trained_estimator.resources:
                assert np.array_equal(
                    served.query_totals(resource), direct.query_totals(resource)
                )
                for index in range(len(plans)):
                    assert served.operators(index, resource) == direct.operators(
                        index, resource
                    )

    def test_cache_statistics(self, trained_estimator, test_queries_and_plans):
        _, plans = test_queries_and_plans
        service = EstimationService(trained_estimator)
        service.estimate_workload(plans)
        assert service.stats.cache_misses == len(plans)
        assert service.stats.cache_hits == 0
        service.estimate_workload(plans)
        assert service.stats.cache_hits == len(plans)
        assert service.stats.plans_served == 2 * len(plans)
        assert service.stats.workloads_served == 2
        assert service.stats.hit_rate == pytest.approx(0.5)

    def test_cache_eviction_is_bounded(self, trained_estimator, test_queries_and_plans):
        _, plans = test_queries_and_plans
        service = EstimationService(trained_estimator, cache_size=2)
        service.estimate_workload(plans)
        assert len(service._feature_cache) <= 2
        service.clear_cache()
        assert len(service._feature_cache) == 0

    def test_estimate_query(self, trained_estimator, test_queries_and_plans):
        _, plans = test_queries_and_plans
        service = EstimationService(trained_estimator)
        assert service.estimate_query(plans[0], "cpu") == pytest.approx(
            trained_estimator.estimate_plan(plans[0], "cpu")
        )

    def test_from_artifact(self, trained_estimator, test_queries_and_plans, tmp_path):
        _, plans = test_queries_and_plans
        path = tmp_path / "model.bin"
        trained_estimator.save(path)
        service = EstimationService.from_artifact(path)
        assert service.resources == trained_estimator.resources
        served = service.estimate_workload(plans, ("cpu",)).query_totals("cpu")
        direct = trained_estimator.estimate_workload(plans, ("cpu",)).query_totals("cpu")
        assert np.array_equal(served, direct)
        report = service.model_size_report()
        assert report.n_model_sets == len(trained_estimator.model_sets)

    def test_rejects_non_native_estimator(self, corpus):
        adapter = make_estimator("opt")
        with pytest.raises(TypeError):
            EstimationService(adapter)
