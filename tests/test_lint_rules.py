"""Tests for ``repro lint``: rules, suppression, baseline, CLI exit codes.

Each rule gets positive fixtures (the invariant violation is reported) and
negative fixtures (idiomatic code stays clean); on top of that the suite
covers ``# repro: noqa[...]`` suppression, baseline absorption, the GitHub
output format, the documented exit-code contract (0 clean / 1 findings /
2 usage error) and — the meta-test — that the repo's own source tree is
lint-clean.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cli import main as lint_main
from repro.lint.engine import check_source, run_lint
from repro.lint.rules import RULES, rule_ids

#: The repo's importable source tree (…/src), independent of the test cwd.
REPO_SRC = Path(repro.__file__).resolve().parents[1]

HOT_PRAGMA = "# repro: hot-path\n"


def rules_of(source: str, path: str = "src/repro/ml/module.py") -> list[str]:
    """Rule ids reported for an in-memory module (suppression applied)."""
    findings, _ = check_source(path, source)
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# REPRO-R1 · no-scalar-hot-loop
# ---------------------------------------------------------------------------


class TestScalarHotLoop:
    def test_scalar_call_in_hot_module_loop_is_flagged(self):
        source = HOT_PRAGMA + (
            "def total(model, items):\n"
            "    acc = 0.0\n"
            "    for item in items:\n"
            "        acc += model.estimate_query(item)\n"
            "    return acc\n"
        )
        assert rules_of(source) == ["REPRO-R1"]

    def test_scalar_call_in_comprehension_is_flagged(self):
        source = HOT_PRAGMA + (
            "def totals(model, items):\n"
            "    return [model.predict_query(item) for item in items]\n"
        )
        assert rules_of(source) == ["REPRO-R1"]

    def test_ambiguous_predict_fires_only_in_per_item_loops(self):
        per_plan = HOT_PRAGMA + (
            "def f(model, plans):\n"
            "    return [model.predict(plan) for plan in plans]\n"
        )
        assert rules_of(per_plan) == ["REPRO-R1"]
        # A boosting loop calls the *row-batched* predict once per tree —
        # that is the idiom the batched path is built on, not a violation.
        boosting = HOT_PRAGMA + (
            "def f(trees, matrix):\n"
            "    out = 0.0\n"
            "    for tree in trees:\n"
            "        out += tree.predict(matrix)\n"
            "    return out\n"
        )
        assert rules_of(boosting) == []

    def test_module_without_pragma_is_exempt(self):
        source = (
            "def total(model, items):\n"
            "    return [model.estimate_query(item) for item in items]\n"
        )
        assert rules_of(source) == []

    def test_hot_path_decorator_opts_in_a_single_function(self):
        source = (
            "from repro.lint import hot_path\n"
            "@hot_path\n"
            "def hot(model, items):\n"
            "    return [model.estimate_query(item) for item in items]\n"
            "def cold(model, items):\n"
            "    return [model.estimate_query(item) for item in items]\n"
        )
        findings, _ = check_source("src/repro/ml/module.py", source)
        assert [finding.rule for finding in findings] == ["REPRO-R1"]
        assert findings[0].line == 4  # inside hot(), not cold()


# ---------------------------------------------------------------------------
# REPRO-R2 · seeded-rng-only
# ---------------------------------------------------------------------------

RNG_PATH = "src/repro/workloads/generator.py"


class TestSeededRngOnly:
    def test_global_numpy_rng_in_workload_code_is_flagged(self):
        source = "import numpy as np\nvalues = np.random.rand(3)\n"
        assert rules_of(source, RNG_PATH) == ["REPRO-R2"]

    def test_stdlib_global_rng_is_flagged(self):
        source = "import random\nx = random.random()\n"
        assert rules_of(source, RNG_PATH) == ["REPRO-R2"]

    def test_unseeded_generator_constructor_is_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(source, RNG_PATH) == ["REPRO-R2"]

    def test_seeded_generator_is_clean(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(1234)\n"
            "values = rng.normal(size=8)\n"
        )
        assert rules_of(source, RNG_PATH) == []

    def test_rule_is_scoped_to_rng_zone_directories(self):
        source = "import numpy as np\nvalues = np.random.rand(3)\n"
        assert rules_of(source, "src/repro/plan/module.py") == []


# ---------------------------------------------------------------------------
# REPRO-R3 · codec-only-persistence
# ---------------------------------------------------------------------------


class TestCodecOnlyPersistence:
    def test_pickle_outside_the_codec_is_flagged(self):
        source = "import pickle\nblob = pickle.dumps({'a': 1})\n"
        assert rules_of(source, "src/repro/api/module.py") == ["REPRO-R3"]

    def test_numpy_save_outside_the_codec_is_flagged(self):
        source = "import numpy as np\nnp.save('weights.npy', [1.0])\n"
        assert rules_of(source, "src/repro/api/module.py") == ["REPRO-R3"]

    def test_the_codec_module_itself_is_exempt(self):
        source = "import pickle\nblob = pickle.dumps({'a': 1})\n"
        assert rules_of(source, "src/repro/core/serialization.py") == []

    def test_import_aliasing_does_not_evade_the_rule(self):
        source = "import pickle as pkl\nblob = pkl.dumps({'a': 1})\n"
        assert rules_of(source, "src/repro/api/module.py") == ["REPRO-R3"]


# ---------------------------------------------------------------------------
# REPRO-R4 · no-float-equality
# ---------------------------------------------------------------------------


class TestNoFloatEquality:
    def test_float_equality_in_split_code_is_flagged(self):
        source = "def f(gain):\n    return gain == 0.0\n"
        assert rules_of(source, "src/repro/ml/tree.py") == ["REPRO-R4"]

    def test_float_inequality_is_flagged(self):
        source = "def f(error):\n    return error != 1.5\n"
        assert rules_of(source, "src/repro/core/selection.py") == ["REPRO-R4"]

    def test_ordered_epsilon_comparison_is_clean(self):
        source = "def f(gain):\n    return gain <= 1e-12\n"
        assert rules_of(source, "src/repro/ml/tree.py") == []

    def test_integer_equality_is_clean(self):
        source = "def f(n):\n    return n == 0\n"
        assert rules_of(source, "src/repro/ml/tree.py") == []

    def test_rule_is_scoped_to_ml_and_core_code(self):
        source = "def f(gain):\n    return gain == 0.0\n"
        assert rules_of(source, "src/repro/plan/module.py") == []


# ---------------------------------------------------------------------------
# REPRO-R5 · no-silent-except
# ---------------------------------------------------------------------------


class TestNoSilentExcept:
    def test_swallowed_broad_except_is_flagged(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert rules_of(source) == ["REPRO-R5"]

    def test_bare_except_is_flagged(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        result = None\n"
        )
        assert rules_of(source) == ["REPRO-R5"]

    def test_reraising_broad_except_is_clean(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        raise RuntimeError('boom') from exc\n"
        )
        assert rules_of(source) == []

    def test_narrow_except_is_clean(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        return None\n"
        )
        assert rules_of(source) == []

    def test_silent_fallback_assignment_is_flagged(self):
        # A guard that degrades without telling anyone hides real failures —
        # the degradation ladder must log every tier switch.
        source = (
            "def f(model, matrix, fallback):\n"
            "    try:\n"
            "        out = model.predict_batch(matrix)\n"
            "    except Exception:\n"
            "        out = fallback.predict_batch(matrix)\n"
            "    return out\n"
        )
        assert rules_of(source) == ["REPRO-R5"]

    def test_logged_guard_except_idiom_is_clean(self):
        # The robustness guard idiom: narrow exception tuple, a warning log,
        # then serve the fallback tier.  Both halves must pass the gate.
        source = (
            "def f(model, matrix, fallback):\n"
            "    try:\n"
            "        out = model.predict_batch(matrix)\n"
            "    except (ValueError, ArithmeticError, RuntimeError) as exc:\n"
            "        _LOGGER.warning('model degraded: %s', exc)\n"
            "        out = fallback.predict_batch(matrix)\n"
            "    return out\n"
        )
        assert rules_of(source) == []

    def test_logged_broad_except_is_clean(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        _LOGGER.exception('unexpected: %s', exc)\n"
            "        return None\n"
        )
        assert rules_of(source) == []


# ---------------------------------------------------------------------------
# REPRO-R6 · dtype-contract
# ---------------------------------------------------------------------------


class TestDtypeContract:
    def test_missing_dtype_in_hot_module_is_flagged(self):
        source = HOT_PRAGMA + (
            "import numpy as np\n"
            "def f(rows):\n"
            "    return np.asarray(rows)\n"
        )
        assert rules_of(source) == ["REPRO-R6"]

    def test_missing_dtype_on_empty_is_flagged(self):
        # The acceptance canary: deleting ``dtype=`` from a batch-path
        # ``np.empty`` must fail the gate with this rule id.
        source = HOT_PRAGMA + (
            "import numpy as np\n"
            "def f(n):\n"
            "    return np.empty(n)\n"
        )
        assert rules_of(source) == ["REPRO-R6"]

    def test_explicit_dtype_keyword_is_clean(self):
        source = HOT_PRAGMA + (
            "import numpy as np\n"
            "def f(rows):\n"
            "    return np.asarray(rows, dtype=np.float64)\n"
        )
        assert rules_of(source) == []

    def test_positional_dtype_is_clean(self):
        source = HOT_PRAGMA + (
            "import numpy as np\n"
            "def f(rows):\n"
            "    return np.array(rows, np.float64)\n"
        )
        assert rules_of(source) == []

    def test_cold_modules_are_exempt(self):
        source = "import numpy as np\ndef f(rows):\n    return np.asarray(rows)\n"
        assert rules_of(source) == []


# ---------------------------------------------------------------------------
# suppression and baseline
# ---------------------------------------------------------------------------


class TestSuppression:
    def test_noqa_with_matching_rule_id_suppresses(self):
        source = "import pickle\nblob = pickle.dumps(x)  # repro: noqa[REPRO-R3]\n"
        findings, suppressed = check_source("src/repro/api/module.py", source)
        assert findings == []
        assert suppressed == 1

    def test_bare_noqa_suppresses_every_rule_on_the_line(self):
        source = "import pickle\nblob = pickle.dumps(x)  # repro: noqa\n"
        findings, suppressed = check_source("src/repro/api/module.py", source)
        assert findings == []
        assert suppressed == 1

    def test_noqa_for_a_different_rule_does_not_suppress(self):
        source = "import pickle\nblob = pickle.dumps(x)  # repro: noqa[REPRO-R2]\n"
        findings, suppressed = check_source("src/repro/api/module.py", source)
        assert [finding.rule for finding in findings] == ["REPRO-R3"]
        assert suppressed == 0


class TestBaseline:
    SOURCE = "import pickle\nblob = pickle.dumps(x)\nblob2 = pickle.dumps(x)\n"

    def _write_module(self, tmp_path: Path) -> Path:
        module = tmp_path / "module.py"
        module.write_text(self.SOURCE, encoding="utf-8")
        return module

    def test_write_then_rerun_absorbs_grandfathered_findings(self, tmp_path):
        module = self._write_module(tmp_path)
        baseline = tmp_path / "baseline.txt"
        report = run_lint([module], root=tmp_path)
        assert write_baseline(baseline, report.findings) == 2
        absorbed = run_lint([module], baseline_path=baseline, root=tmp_path)
        assert absorbed.clean
        assert absorbed.baselined == 2

    def test_baseline_keys_survive_line_number_drift(self, tmp_path):
        module = self._write_module(tmp_path)
        baseline = tmp_path / "baseline.txt"
        report = run_lint([module], root=tmp_path)
        write_baseline(baseline, report.findings)
        # Prepend unrelated lines: line numbers shift, keys do not.
        module.write_text("import os\n\n" + self.SOURCE, encoding="utf-8")
        shifted = run_lint([module], baseline_path=baseline, root=tmp_path)
        assert shifted.clean

    def test_baseline_is_multiset_aware(self, tmp_path):
        """One grandfathered copy does not excuse new copies of the pattern."""
        module = self._write_module(tmp_path)
        report = run_lint([module], root=tmp_path)
        one_key = load_baseline(Path("/nonexistent"))
        one_key[report.findings[0].baseline_key()] += 1
        survivors, absorbed = apply_baseline(report.findings, one_key)
        assert absorbed == 1
        assert [finding.rule for finding in survivors] == ["REPRO-R3"]


# ---------------------------------------------------------------------------
# CLI: formats and the exit-code contract
# ---------------------------------------------------------------------------


class TestLintCli:
    def test_clean_tree_exits_0(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_findings_exit_1_with_grep_style_lines(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\nblob = pickle.dumps(x)\n", encoding="utf-8")
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REPRO-R3" in out
        assert ":2:" in out  # path:line:col prefix

    def test_nonexistent_path_exits_2(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "missing")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_option_exits_2(self, capsys):
        assert lint_main(["--no-such-flag"]) == 2

    def test_github_format_emits_workflow_commands(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\nblob = pickle.dumps(x)\n", encoding="utf-8")
        assert lint_main([str(bad), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=REPRO-R3" in out

    def test_list_rules_covers_every_rule(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.rule_id in out
            assert rule.slug in out

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\nblob = pickle.dumps(x)\n", encoding="utf-8")
        assert lint_main(["bad.py", "--write-baseline"]) == 0
        assert Path("lint-baseline.txt").is_file()
        capsys.readouterr()
        assert lint_main(["bad.py"]) == 0  # default baseline picked up
        assert "1 baselined" in capsys.readouterr().err

    def test_repro_cli_lint_subcommand_shares_the_contract(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert cli_main(["lint", str(tmp_path)]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\nblob = pickle.dumps(x)\n", encoding="utf-8")
        assert cli_main(["lint", str(bad)]) == 1
        assert cli_main(["lint", str(tmp_path / "missing")]) == 2


# ---------------------------------------------------------------------------
# meta: the repo's own source is the first consumer of the gate
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_rule_registry_is_consistent(self):
        assert len(rule_ids()) == len(set(rule_ids())) == 6

    def test_repo_source_tree_is_lint_clean(self):
        report = run_lint([REPO_SRC], root=REPO_SRC.parent)
        assert [finding.text() for finding in report.findings] == []
        assert report.files_checked > 50

    def test_repo_tests_are_lint_clean(self):
        tests_dir = REPO_SRC.parent / "tests"
        if not tests_dir.is_dir():
            pytest.skip("tests/ not present next to src/ (installed package)")
        report = run_lint([tests_dir], root=REPO_SRC.parent)
        assert [finding.text() for finding in report.findings] == []
