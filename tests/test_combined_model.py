"""Tests for combined models, model selection and the trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.combined_model import CombinedModel
from repro.core.model_selection import ModelSelector
from repro.core.scaled_model import ScalingStep
from repro.core.scaling import SCALING_FUNCTIONS
from repro.core.trainer import FamilyTrainingData, ScalingModelTrainer, TrainerConfig
from repro.features.definitions import OperatorFamily
from repro.ml.mart import MARTConfig

FEATURES = ("COUT", "SOUTAVG", "SOUTTOT", "CIN1", "SINAVG1", "SINTOT1",
            "CIN2", "SINAVG2", "SINTOT2", "OUTPUTUSAGE", "CPREDICATES")


def synthetic_rows(n: int = 300, seed: int = 0, max_rows: float = 10_000.0):
    """Filter-like training rows: CPU = 0.05 * CIN1 * (1 + width/200)."""
    rng = np.random.default_rng(seed)
    rows, targets = [], []
    for _ in range(n):
        cin = float(rng.uniform(100, max_rows))
        width = float(rng.uniform(10, 200))
        cout = cin * float(rng.uniform(0.1, 0.9))
        row = {
            "COUT": cout,
            "SOUTAVG": width,
            "SOUTTOT": cout * width,
            "CIN1": cin,
            "SINAVG1": width,
            "SINTOT1": cin * width,
            "CIN2": 0.0,
            "SINAVG2": 0.0,
            "SINTOT2": 0.0,
            "OUTPUTUSAGE": 3.0,
            "CPREDICATES": 1.0,
        }
        rows.append(row)
        targets.append(0.05 * cin * (1.0 + width / 200.0))
    return rows, np.array(targets)


def tiny_mart() -> MARTConfig:
    return MARTConfig(n_iterations=30, max_leaves=8, learning_rate=0.2, subsample=1.0)


class TestCombinedModel:
    def test_plain_model_fits_training_data(self):
        rows, targets = synthetic_rows()
        model = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, (), tiny_mart())
        model.fit(rows, targets)
        assert model.training_error_ < 0.2
        assert model.is_default_form
        assert model.n_training_rows_ == len(rows)

    def test_scaled_model_extrapolates(self):
        """A CIN1-scaled model stays accurate 20x beyond the training range."""
        rows, targets = synthetic_rows(max_rows=10_000.0)
        scaled = CombinedModel(
            OperatorFamily.FILTER, "cpu", FEATURES,
            (ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),), tiny_mart(),
        )
        plain = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, (), tiny_mart())
        scaled.fit(rows, targets)
        plain.fit(rows, targets)

        big = {
            "COUT": 100_000.0, "SOUTAVG": 100.0, "SOUTTOT": 1e7,
            "CIN1": 200_000.0, "SINAVG1": 100.0, "SINTOT1": 2e7,
            "CIN2": 0.0, "SINAVG2": 0.0, "SINTOT2": 0.0,
            "OUTPUTUSAGE": 3.0, "CPREDICATES": 1.0,
        }
        truth = 0.05 * 200_000.0 * 1.5
        scaled_error = abs(scaled.predict(big) - truth) / truth
        plain_error = abs(plain.predict(big) - truth) / truth
        assert scaled_error < 0.4
        assert scaled_error < plain_error

    def test_out_ratio_zero_inside_training_range(self):
        rows, targets = synthetic_rows()
        model = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, (), tiny_mart())
        model.fit(rows, targets)
        assert model.max_out_ratio(rows[0]) == 0.0

    def test_out_ratio_positive_outside_training_range(self):
        rows, targets = synthetic_rows(max_rows=5_000.0)
        model = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, (), tiny_mart())
        model.fit(rows, targets)
        outlier = dict(rows[0])
        outlier["CIN1"] = 500_000.0
        assert model.out_ratio(outlier, "CIN1") > 1.0

    def test_scaled_model_ignores_out_of_range_scaling_feature(self):
        rows, targets = synthetic_rows(max_rows=5_000.0)
        scaled = CombinedModel(
            OperatorFamily.FILTER, "cpu", FEATURES,
            (ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),), tiny_mart(),
        )
        scaled.fit(rows, targets)
        outlier = dict(rows[0])
        outlier["CIN1"] = 500_000.0
        outlier["SINTOT1"] = outlier["CIN1"] * outlier["SINAVG1"]
        # CIN1 is not an input of the scaled model, and SINTOT1 is normalised
        # by CIN1, so the instance is no longer an outlier for this model.
        assert scaled.out_ratio(outlier, "CIN1") == 0.0
        assert scaled.max_out_ratio(outlier) < 0.5

    def test_predictions_are_nonnegative(self):
        rows, targets = synthetic_rows()
        model = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, (), tiny_mart())
        model.fit(rows, targets)
        tiny = {name: 0.0 for name in FEATURES}
        assert model.predict(tiny) >= 0.0

    def test_unfitted_model_raises(self):
        model = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, (), tiny_mart())
        with pytest.raises(RuntimeError):
            model.predict({name: 1.0 for name in FEATURES})
        with pytest.raises(ValueError):
            model.fit([], np.array([]))

    def test_name_encodes_scaling(self):
        plain = CombinedModel(OperatorFamily.SORT, "cpu", FEATURES, ())
        scaled = CombinedModel(
            OperatorFamily.SORT, "cpu", FEATURES,
            (ScalingStep("CIN1", SCALING_FUNCTIONS["nlogn"]),),
        )
        assert "plain" in plain.name
        assert "CIN1:nlogn" in scaled.name


class TestModelSelection:
    def _models(self):
        rows, targets = synthetic_rows(max_rows=5_000.0)
        plain = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, (), tiny_mart())
        plain.fit(rows, targets)
        scaled = CombinedModel(
            OperatorFamily.FILTER, "cpu", FEATURES,
            (ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),), tiny_mart(),
        )
        scaled.fit(rows, targets)
        return rows, plain, scaled

    def test_default_used_when_in_range(self):
        rows, plain, scaled = self._models()
        decision = ModelSelector().select(plain, [plain, scaled], rows[0])
        assert decision.model is plain
        assert decision.used_default
        assert decision.max_out_ratio == 0.0

    def test_scaled_model_chosen_for_outliers(self):
        rows, plain, scaled = self._models()
        outlier = dict(rows[0])
        outlier["CIN1"] = 1_000_000.0
        outlier["SINTOT1"] = outlier["CIN1"] * outlier["SINAVG1"]
        decision = ModelSelector().select(plain, [plain, scaled], outlier)
        assert decision.model is scaled
        assert not decision.used_default

    def test_tie_break_prefers_fewer_scaling_features(self):
        rows, targets = synthetic_rows()
        single = CombinedModel(
            OperatorFamily.FILTER, "cpu", FEATURES,
            (ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),), tiny_mart(),
        ).fit(rows, targets)
        double = CombinedModel(
            OperatorFamily.FILTER, "cpu", FEATURES,
            (
                ScalingStep("CIN1", SCALING_FUNCTIONS["linear"]),
                ScalingStep("SOUTAVG", SCALING_FUNCTIONS["linear"]),
            ),
            tiny_mart(),
        ).fit(rows, targets)
        plain = CombinedModel(OperatorFamily.FILTER, "cpu", FEATURES, (), tiny_mart()).fit(
            rows, targets
        )
        outlier = dict(rows[0])
        outlier["CIN1"] = 1_000_000.0
        outlier["SINTOT1"] = outlier["CIN1"] * outlier["SINAVG1"]
        decision = ModelSelector().select(plain, [plain, single, double], outlier)
        assert decision.model is single


class TestTrainer:
    def _family_data(self, n: int = 200) -> FamilyTrainingData:
        rows, targets = synthetic_rows(n)
        data = FamilyTrainingData(family=OperatorFamily.FILTER)
        for row, target in zip(rows, targets):
            data.add(row, {"cpu": target, "io": 0.0})
        return data

    def test_trains_plain_and_scaled_models(self):
        trainer = ScalingModelTrainer(TrainerConfig(mart=tiny_mart(), max_pair_models=1))
        model_set = trainer.train_family(self._family_data(), "cpu")
        assert model_set is not None
        assert any(m.is_default_form for m in model_set.models)
        assert any(m.n_scaling_features == 1 for m in model_set.models)
        assert model_set.default_model in model_set.models

    def test_default_model_minimises_training_error(self):
        trainer = ScalingModelTrainer(TrainerConfig(mart=tiny_mart()))
        model_set = trainer.train_family(self._family_data(), "cpu")
        best_error = min(m.training_error_ for m in model_set.models)
        assert model_set.default_model.training_error_ == pytest.approx(best_error)

    def test_insufficient_rows_returns_none(self):
        trainer = ScalingModelTrainer(TrainerConfig(mart=tiny_mart(), min_training_rows=50))
        assert trainer.train_family(self._family_data(10), "cpu") is None

    def test_model_set_predicts_positive_values(self):
        trainer = ScalingModelTrainer(TrainerConfig(mart=tiny_mart(), max_pair_models=1))
        model_set = trainer.train_family(self._family_data(), "cpu")
        rows, _ = synthetic_rows(5, seed=99)
        for row in rows:
            assert model_set.predict(row) >= 0.0

    def test_constant_features_not_used_for_scaling(self):
        trainer = ScalingModelTrainer(TrainerConfig(mart=tiny_mart()))
        model_set = trainer.train_family(self._family_data(), "cpu")
        for model in model_set.models:
            assert "CIN2" not in model.scaling_feature_names  # constant zero in the data
