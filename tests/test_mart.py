"""Tests for the MART (gradient-boosted trees) regressor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.mart import MARTConfig, MARTRegressor


def nonlinear_data(n: int = 600, seed: int = 1):
    rng = np.random.default_rng(seed)
    x = np.column_stack([rng.uniform(1, 1000, n), rng.uniform(1, 50, n)])
    y = 0.02 * x[:, 0] * np.log2(x[:, 0]) + 5.0 * x[:, 1] + rng.normal(0, 2.0, n)
    return x, y


class TestTraining:
    def test_fits_nonlinear_function(self):
        x, y = nonlinear_data()
        model = MARTRegressor(MARTConfig(n_iterations=120)).fit(x[:500], y[:500])
        pred = model.predict(x[500:])
        relative = np.abs(pred - y[500:]) / np.maximum(np.abs(y[500:]), 1e-9)
        assert float(np.median(relative)) < 0.1

    def test_more_iterations_reduce_training_error(self):
        x, y = nonlinear_data()

        def training_error(iterations: int) -> float:
            model = MARTRegressor(MARTConfig(n_iterations=iterations, subsample=1.0)).fit(x, y)
            return float(np.mean((model.predict(x) - y) ** 2))

        assert training_error(100) < training_error(5)

    def test_config_overrides(self):
        model = MARTRegressor(n_iterations=7, learning_rate=0.3)
        assert model.config.n_iterations == 7
        assert model.config.learning_rate == 0.3

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            MARTRegressor(MARTConfig(n_iterations=0))
        with pytest.raises(ValueError):
            MARTRegressor(MARTConfig(learning_rate=0.0))
        with pytest.raises(ValueError):
            MARTRegressor(MARTConfig(subsample=1.5))

    def test_constant_target_stops_early(self):
        x = np.random.default_rng(0).uniform(size=(50, 2))
        model = MARTRegressor(MARTConfig(n_iterations=100)).fit(x, np.full(50, 3.0))
        assert model.n_trees == 0
        assert model.predict(x)[0] == pytest.approx(3.0)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            MARTRegressor().fit(np.empty((0, 2)), np.empty(0))


class TestPrediction:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MARTRegressor().predict(np.zeros((1, 2)))

    def test_feature_count_checked(self):
        x, y = nonlinear_data(100)
        model = MARTRegressor(MARTConfig(n_iterations=5)).fit(x, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 5)))

    def test_single_row_prediction_shape(self):
        x, y = nonlinear_data(100)
        model = MARTRegressor(MARTConfig(n_iterations=5)).fit(x, y)
        assert model.predict(x[0]).shape == (1,)

    def test_training_range_recorded(self):
        x, y = nonlinear_data(100)
        model = MARTRegressor(MARTConfig(n_iterations=5)).fit(x, y)
        low, high = model.training_range(0)
        assert low == pytest.approx(x[:, 0].min())
        assert high == pytest.approx(x[:, 0].max())

    def test_staged_predictions_converge(self):
        x, y = nonlinear_data(300)
        model = MARTRegressor(MARTConfig(n_iterations=60, subsample=1.0)).fit(x, y)
        stages = model.staged_predict(x, every=20)
        errors = [float(np.mean((stage - y) ** 2)) for stage in stages]
        assert errors[-1] <= errors[0]


@settings(max_examples=15, deadline=None)
@given(scale=st.floats(min_value=2.0, max_value=50.0, allow_nan=False))
def test_mart_cannot_extrapolate(scale):
    """Property (the paper's Figure 3): predictions for inputs far above the
    training range stay near the largest trained response."""
    rng = np.random.default_rng(3)
    x = rng.uniform(0, 100, size=(300, 1))
    y = 3.0 * x[:, 0]
    model = MARTRegressor(MARTConfig(n_iterations=60)).fit(x, y)
    probe = np.array([[100.0 * scale]])
    prediction = float(model.predict(probe)[0])
    assert prediction <= y.max() * 1.05
    assert prediction < 3.0 * 100.0 * scale * 0.9  # badly underestimates the truth
