"""Tests for the adaptive serving loop (:mod:`repro.adaptive`).

Covers each stage in isolation — observation log, drift monitor, model
registry, retrain controller — plus the assembled :class:`AdaptiveLoop`
plumbing.  The full closed-loop story (drift trips, background refit,
canary-checked hot-swap, error recovers) is asserted end to end by
``benchmarks/test_adaptive_loop.py``.
"""

from __future__ import annotations

import hashlib
import json
import threading

import pytest

from repro.adaptive import (
    AdaptiveLoop,
    DriftConfig,
    DriftEvent,
    DriftMonitor,
    ModelRegistry,
    Observation,
    ObservationLog,
    RegistryError,
    RetrainConfig,
    RetrainController,
    RetrainOutcome,
    corpus_fingerprint,
    manifest_for_artifact,
)
from repro.api.protocol import TrainingCorpus
from repro.api.service import EstimationService
from repro.core.serialization import read_artifact_version
from repro.features.definitions import FeatureMode


def _fake_observation(
    sequence: int, rel_err: float, resources: tuple[str, ...] = ("cpu",)
) -> Observation:
    """An Observation with exact relative error ``rel_err`` per resource."""
    return Observation(
        sequence=sequence,
        query_name=f"q{sequence}",
        template="fake",
        predicted={r: 100.0 for r in resources},
        actual={r: 100.0 * (1.0 + rel_err) for r in resources},
        operator_predicted={r: {} for r in resources},
        observed=None,  # type: ignore[arg-type]  # never touched: no operator predictions
    )


_EVENT = DriftEvent(
    sequence=0,
    resource="cpu",
    median_relative_error=0.4,
    band_hit_rate=0.4,
    n=24,
    trip_threshold=0.25,
    reason="relative-error",
)


@pytest.fixture()
def service(trained_estimator):
    return EstimationService(trained_estimator)


class TestObservationLog:
    def test_attach_serve_complete_roundtrip(self, service, tpch_plans, executor):
        log = ObservationLog(capacity=8).attach(service)
        plans = tpch_plans[:3]
        estimate = service.estimate_workload(plans)
        assert log.pending_count == 3
        for index, plan in enumerate(plans):
            observation = log.complete(plan, executor.execute(plan))
            assert observation is not None
            assert observation.predicted["cpu"] == pytest.approx(
                estimate.query(index, "cpu")
            )
            assert observation.actual["cpu"] == pytest.approx(
                observation.observed.actual("cpu")
            )
            assert observation.relative_error("cpu") >= 0.0
            assert observation.ratio_error("cpu") >= 1.0
        assert log.pending_count == 0
        assert len(log) == 3 and log.sequence == 3

    def test_detach_stops_recording(self, service, tpch_plans):
        log = ObservationLog().attach(service)
        log.detach(service)
        service.estimate_workload(tpch_plans[:2])
        assert log.pending_count == 0

    def test_ring_keeps_newest(self, service, tpch_plans, executor):
        log = ObservationLog(capacity=2).attach(service)
        plans = tpch_plans[:4]
        service.estimate_workload(plans)
        for plan in plans:
            log.complete(plan, executor.execute(plan))
        assert len(log) == 2 and log.sequence == 4
        assert [obs.sequence for obs in log.snapshot()] == [2, 3]

    def test_same_plan_served_twice_joins_fifo(self, service, tpch_plans, executor):
        log = ObservationLog().attach(service)
        plan = tpch_plans[0]
        service.estimate_workload([plan])
        service.estimate_workload([plan])
        assert log.pending_count == 2
        result = executor.execute(plan)
        assert log.complete(plan, result) is not None
        assert log.complete(plan, result) is not None
        assert log.complete(plan, result) is None
        assert log.unmatched_completions == 1

    def test_pending_eviction_drops_oldest(self, service, tpch_plans, executor):
        log = ObservationLog(pending_capacity=2).attach(service)
        plans = tpch_plans[:3]
        service.estimate_workload(plans)
        assert log.pending_count == 2
        assert log.dropped_pending == 1
        # The oldest parked prediction (first plan) was the one evicted.
        assert log.complete(plans[0], executor.execute(plans[0])) is None
        assert log.complete(plans[1], executor.execute(plans[1])) is not None

    def test_spill_writes_deterministic_jsonl(
        self, service, tpch_plans, executor, tmp_path
    ):
        spill = tmp_path / "observations.jsonl"
        with ObservationLog(spill_path=spill) as log:
            log.attach(service)
            plans = tpch_plans[:2]
            service.estimate_workload(plans)
            for plan in plans:
                log.complete(plan, executor.execute(plan))
        lines = spill.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        for sequence, line in enumerate(lines):
            record = json.loads(line)
            assert record["sequence"] == sequence
            assert set(record["resources"]) == {"cpu", "io"}
            assert line == json.dumps(record, sort_keys=True)

    def test_observed_queries_are_refit_ready(self, service, tpch_plans, executor):
        log = ObservationLog().attach(service)
        service.estimate_workload(tpch_plans[:4])
        for plan in tpch_plans[:4]:
            log.complete(plan, executor.execute(plan))
        queries = log.observed_queries(limit=3)
        assert len(queries) == 3
        assert all(query.operators for query in queries)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ObservationLog(capacity=0)
        with pytest.raises(ValueError):
            ObservationLog(pending_capacity=0)


class TestDriftMonitor:
    def test_no_trip_below_min_observations(self):
        monitor = DriftMonitor(
            DriftConfig(window=16, min_observations=8, cooldown=0, resources=("cpu",))
        )
        for sequence in range(7):
            assert monitor.observe(_fake_observation(sequence, 0.9)) is None
        assert monitor.events == 0

    def test_trips_once_on_high_relative_error(self):
        monitor = DriftMonitor(
            DriftConfig(window=16, min_observations=4, cooldown=0, resources=("cpu",))
        )
        events = [
            monitor.observe(_fake_observation(sequence, 0.6)) for sequence in range(12)
        ]
        fired = [event for event in events if event is not None]
        assert len(fired) == 1
        assert fired[0].reason == "relative-error"
        assert fired[0].median_relative_error == pytest.approx(0.6)
        assert monitor.tripped("cpu") and monitor.any_tripped
        assert monitor.events == 1

    def test_hysteresis_clears_then_retrips(self):
        monitor = DriftMonitor(
            DriftConfig(window=8, min_observations=4, cooldown=0, resources=("cpu",))
        )
        sequence = 0
        for _ in range(8):
            monitor.observe(_fake_observation(sequence, 0.6))
            sequence += 1
        assert monitor.tripped("cpu")
        # Recovery: low errors push the rolling median below clear_threshold.
        for _ in range(8):
            assert monitor.observe(_fake_observation(sequence, 0.01)) is None
            sequence += 1
        assert not monitor.tripped("cpu")
        for _ in range(8):
            monitor.observe(_fake_observation(sequence, 0.6))
            sequence += 1
        assert monitor.events == 2

    def test_band_hit_rate_trip_reason(self):
        # Ratio error 100/30 > 2 misses the band while the relative error
        # (0.7) stays below the (loose) trip threshold.
        monitor = DriftMonitor(
            DriftConfig(
                window=8,
                min_observations=4,
                trip_threshold=5.0,
                clear_threshold=1.0,
                cooldown=0,
                resources=("cpu",),
            )
        )
        fired = None
        for sequence in range(6):
            fired = fired or monitor.observe(_fake_observation(sequence, -0.7))
        assert fired is not None
        assert fired.reason == "band-hit-rate"
        assert fired.band_hit_rate == pytest.approx(0.0)

    def test_reset_with_cooldown_suppresses_events(self):
        config = DriftConfig(
            window=8, min_observations=2, cooldown=5, resources=("cpu",)
        )
        monitor = DriftMonitor(config)
        monitor.reset(cooldown=True)
        events = [
            monitor.observe(_fake_observation(sequence, 0.9)) for sequence in range(10)
        ]
        assert all(event is None for event in events[:5])
        assert any(event is not None for event in events[5:])

    def test_metrics_report_rolling_window(self):
        monitor = DriftMonitor(
            DriftConfig(window=4, min_observations=2, cooldown=0, resources=("cpu",))
        )
        for sequence, rel_err in enumerate([0.1, 0.2, 0.3, 0.4, 0.5]):
            monitor.observe(_fake_observation(sequence, rel_err))
        metrics = monitor.metrics()["cpu"]
        assert metrics.n == 4  # window evicted the first observation
        assert metrics.median_relative_error == pytest.approx(0.35)
        assert metrics.band_hit_rate == pytest.approx(1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriftConfig(clear_threshold=0.3, trip_threshold=0.25)
        with pytest.raises(ValueError):
            DriftConfig(min_observations=100, window=48)
        with pytest.raises(ValueError):
            DriftConfig(resources=())


class TestModelRegistry:
    def test_register_writes_immutable_manifest(self, tmp_path, trained_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        manifest = registry.register(trained_estimator, note="seed")
        assert manifest.version == "v0001"
        assert manifest.status == "candidate"
        artifact = registry.artifact_path("v0001")
        assert manifest.checksum == hashlib.sha256(artifact.read_bytes()).hexdigest()
        assert manifest.artifact_version == read_artifact_version(artifact)

    def test_promote_retires_previous_active(self, tmp_path, trained_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.register(trained_estimator)
        registry.promote("v0001")
        registry.register(trained_estimator, parent="v0001")
        registry.promote("v0002")
        assert registry.active == "v0002"
        assert registry.manifest("v0001").status == "retired"
        assert registry.manifest("v0002").parent == "v0001"

    def test_rejection_is_recorded_not_deleted(self, tmp_path, trained_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.register(trained_estimator)
        registry.record_rejection("v0001", "canary failed")
        manifest = registry.manifest("v0001")
        assert manifest.status == "rejected"
        assert manifest.note == "canary failed"
        assert registry.artifact_path("v0001").exists()
        with pytest.raises(RegistryError):
            registry.promote("v0001")

    def test_cannot_reject_the_active_version(self, tmp_path, trained_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.register(trained_estimator)
        registry.promote("v0001")
        with pytest.raises(RegistryError):
            registry.record_rejection("v0001", "no")

    def test_unknown_versions_raise(self, tmp_path, trained_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.register(trained_estimator)
        for call in (registry.manifest, registry.artifact_path, registry.promote):
            with pytest.raises(RegistryError):
                call("v9999")
        with pytest.raises(RegistryError):
            registry.register(trained_estimator, parent="v9999")

    def test_reload_from_disk_preserves_state(self, tmp_path, trained_estimator):
        root = tmp_path / "registry"
        first = ModelRegistry(root)
        first.register(trained_estimator, metrics={"cpu": {"err": 0.1}})
        first.promote("v0001")
        reloaded = ModelRegistry(root)
        assert reloaded.versions() == ("v0001",)
        assert reloaded.active == "v0001"
        assert reloaded.manifest("v0001") == first.manifest("v0001")
        kinds = [event["event"] for event in reloaded.events()]
        assert kinds == ["register", "promote"]

    def test_diff_deltas_on_shared_metrics_only(self, tmp_path, trained_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.register(trained_estimator, metrics={"cpu": {"err": 0.10}})
        registry.register(
            trained_estimator,
            metrics={"cpu": {"err": 0.04, "hit": 0.9}},
            parent="v0001",
        )
        diff = registry.diff("v0001", "v0002")
        assert diff["metrics_delta"]["cpu"] == {"err": pytest.approx(-0.06)}
        assert diff["metrics"]["b"]["cpu"]["hit"] == pytest.approx(0.9)
        assert diff["lineage"] == {"a_parent": None, "b_parent": "v0001"}
        assert diff["corpus_changed"] is False

    def test_manifest_for_artifact(self, tmp_path, trained_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.register(trained_estimator)
        found = manifest_for_artifact(registry.artifact_path("v0001"))
        assert found is not None and found.version == "v0001"
        plain = tmp_path / "plain.bin"
        trained_estimator.save(plain)
        assert manifest_for_artifact(plain) is None

    def test_corpus_fingerprint_is_deterministic(self, small_workload):
        corpus = TrainingCorpus.from_workload(
            small_workload, FeatureMode.EXACT, ("cpu", "io")
        )
        first = corpus_fingerprint(corpus)
        again = corpus_fingerprint(corpus)
        assert first == again
        assert first["n_queries"] == len(corpus.queries)
        truncated = corpus_fingerprint(
            corpus.queries[:-1], mode=corpus.mode, name="other"
        )
        assert truncated["digest"] != first["digest"]


@pytest.fixture()
def observed_service(trained_estimator, tpch_plans, executor):
    """A service with an attached log holding 36 completed observations."""
    service = EstimationService(trained_estimator)
    log = ObservationLog(capacity=64).attach(service)
    for _ in range(2):
        for plan in tpch_plans:
            service.estimate_workload([plan])
            assert log.complete(plan, executor.execute(plan)) is not None
    return service, log


class TestRetrainController:
    def test_insufficient_data_is_a_recorded_outcome(
        self, service, tmp_path
    ):
        controller = RetrainController(
            service,
            ObservationLog(),
            ModelRegistry(tmp_path / "registry"),
            RetrainConfig(min_observations=48),
        )
        outcome = controller.retrain_now(_EVENT)
        assert outcome.status == "insufficient-data"
        assert controller.history() == (outcome,)

    def test_retrain_promotes_and_hot_swaps(
        self, observed_service, trained_estimator, tmp_path
    ):
        service, log = observed_service
        registry = ModelRegistry(tmp_path / "registry")
        registry.register(trained_estimator, note="seed")
        registry.promote("v0001")
        promoted: list[RetrainOutcome] = []
        controller = RetrainController(
            service,
            log,
            registry,
            RetrainConfig(min_observations=24, max_holdout_error=None, seed=5),
            on_promote=promoted.append,
        )
        outcome = controller.retrain_now(_EVENT)
        assert outcome.promoted and outcome.version == "v0002"
        assert set(outcome.holdout_error) == {"cpu", "io"}
        assert registry.active == "v0002"
        assert registry.manifest("v0002").parent == "v0001"
        assert registry.manifest("v0002").corpus["n_queries"] > 0
        assert service.estimator is not trained_estimator
        assert service.stats.snapshot().swaps == 1
        assert promoted == [outcome]

    def test_validation_gate_rejects_and_backs_off(
        self, observed_service, trained_estimator, tmp_path
    ):
        service, log = observed_service
        registry = ModelRegistry(tmp_path / "registry")
        controller = RetrainController(
            service,
            log,
            registry,
            RetrainConfig(
                min_observations=24,
                max_holdout_error=1e-6,  # unattainable: force the gate
                seed=5,
                backoff_events=2,
            ),
        )
        outcome = controller.retrain_now(_EVENT)
        assert outcome.status == "validation-failed"
        assert outcome.version is not None
        assert registry.manifest(outcome.version).status == "rejected"
        assert service.estimator is trained_estimator  # incumbent untouched
        assert service.stats.snapshot().swaps == 0
        # Exponential backoff: the next two drift events are skipped.
        assert controller.handle_drift(_EVENT) is None
        assert controller.handle_drift(_EVENT) is None
        statuses = [o.status for o in controller.history()]
        assert statuses == [
            "validation-failed", "skipped-backoff", "skipped-backoff",
        ]

    def test_single_refit_in_flight(
        self, observed_service, trained_estimator, tmp_path, monkeypatch
    ):
        service, log = observed_service
        registry = ModelRegistry(tmp_path / "registry")
        controller = RetrainController(
            service,
            log,
            registry,
            RetrainConfig(min_observations=24, max_holdout_error=None, seed=5),
        )
        started, release = threading.Event(), threading.Event()
        original = controller._fit_candidate

        def blocking_fit(corpus):
            started.set()
            assert release.wait(timeout=30.0)
            return original(corpus)

        monkeypatch.setattr(controller, "_fit_candidate", blocking_fit)
        thread = controller.handle_drift(_EVENT)
        assert thread is not None
        assert started.wait(timeout=30.0)
        assert controller.in_flight
        # A second event while the refit is in flight is dropped silently.
        assert controller.handle_drift(_EVENT) is None
        release.set()
        controller.join(timeout=60.0)
        assert [o.status for o in controller.history()] == ["promoted"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RetrainConfig(min_observations=1)
        with pytest.raises(ValueError):
            RetrainConfig(min_observations=64, max_observations=32)
        with pytest.raises(ValueError):
            RetrainConfig(holdout_fraction=1.0)


class TestAdaptiveLoop:
    def test_complete_feeds_monitor_without_tripping(
        self, service, tpch_plans, executor, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        drift = DriftConfig(
            window=8,
            min_observations=4,
            trip_threshold=10.0,
            clear_threshold=5.0,
            cooldown=0,
        )
        retrain = RetrainConfig(min_observations=1000, max_observations=None)
        with AdaptiveLoop(service, registry, drift, retrain) as loop:
            for plan in tpch_plans[:6]:
                service.estimate_workload([plan])
                assert loop.complete(plan, executor.execute(plan)) is not None
            assert loop.monitor.metrics()["cpu"].n == 6
            assert loop.monitor.events == 0
            assert loop.controller.history() == ()

    def test_drift_event_reaches_the_controller(
        self, service, tpch_plans, executor, tmp_path, monkeypatch
    ):
        registry = ModelRegistry(tmp_path / "registry")
        with AdaptiveLoop(service, registry) as loop:
            handled: list[DriftEvent] = []
            monkeypatch.setattr(loop.monitor, "observe", lambda obs: _EVENT)
            monkeypatch.setattr(
                loop.controller, "handle_drift", lambda event: handled.append(event)
            )
            plan = tpch_plans[0]
            service.estimate_workload([plan])
            assert loop.complete(plan, executor.execute(plan)) is not None
            assert handled == [_EVENT]

    def test_unserved_plan_completes_to_none(
        self, service, tpch_plans, executor, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        with AdaptiveLoop(service, registry) as loop:
            plan = tpch_plans[0]
            assert loop.complete(plan, executor.execute(plan)) is None

    def test_promotion_resets_the_monitor_with_cooldown(self, service, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        drift = DriftConfig(window=8, min_observations=2, cooldown=5)
        loop = AdaptiveLoop(service, registry, drift)
        try:
            for sequence in range(4):
                loop.monitor.observe(_fake_observation(sequence, 0.1))
            assert loop.monitor.metrics()["cpu"].n == 4
            loop._after_promote(
                RetrainOutcome(sequence=4, status="promoted", version="v0002")
            )
            assert loop.monitor.metrics()["cpu"].n == 0
            # Cooldown: even egregious errors cannot trip right after a swap.
            for sequence in range(5):
                assert loop.monitor.observe(_fake_observation(sequence, 5.0)) is None
        finally:
            loop.close()
