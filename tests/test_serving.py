"""Concurrency tests for the serving layer (`repro.serving`).

The coalescer's contract is exact: concurrent callers get **bit-identical**
results to direct ``estimate_workload`` calls, queue latency is bounded by
``max_wait_ms``, in-flight requests survive a concurrent artifact hot-swap,
and the load generator replays the same seeded trace every time.  Each of
those claims is asserted here under real threads, plus the thread-safety of
the :class:`~repro.api.EstimationService` internals the coalescer rides on.
"""

from __future__ import annotations

import threading
from concurrent.futures import wait

import numpy as np
import pytest

from repro.api import EstimationService
from repro.api.service import ServiceStats
from repro.robustness import FaultInjector, PlanValidationError
from repro.serving import (
    ConcurrentEstimationService,
    LoadConfig,
    Scenario,
    ServeBenchConfig,
    build_trace,
    run_load,
    run_serve_bench,
    standard_scenarios,
)


@pytest.fixture(scope="module")
def plans(tpch_plans):
    return tpch_plans


@pytest.fixture(scope="module")
def scenarios(plans):
    return (
        Scenario("interactive", 0.7, tuple(plans), plans_per_request=1),
        Scenario("batch4", 0.3, tuple(plans), plans_per_request=4),
    )


def _assert_identical(direct, coalesced):
    """Bitwise equality of two WorkloadEstimates, dict order included."""
    assert coalesced.resources == direct.resources
    assert coalesced.n_plans == direct.n_plans
    for resource in direct.resources:
        for j in range(direct.n_plans):
            d, c = direct.operator_estimates[resource][j], coalesced.operator_estimates[resource][j]
            assert list(d.items()) == list(c.items())
        assert np.array_equal(
            direct.query_totals(resource), coalesced.query_totals(resource)
        )


class TestCoalescedParity:
    def test_single_plan_requests_bit_identical(self, trained_estimator, plans):
        direct = EstimationService(trained_estimator)
        service = EstimationService(trained_estimator)
        with ConcurrentEstimationService(
            service, max_batch_size=64, max_wait_ms=20.0
        ) as server:
            futures = [server.submit([plan]) for plan in plans]
            results = [future.result(timeout=30) for future in futures]
        for plan, coalesced in zip(plans, results):
            _assert_identical(direct.estimate_workload([plan]), coalesced)

    def test_mixed_requests_bit_identical_across_forced_batches(
        self, trained_estimator, plans
    ):
        # Tiny max_batch_size + short deadline forces many batch boundaries;
        # requests differ in plan count AND requested resources, so the
        # demux must slice a union-resource batch correctly.
        direct = EstimationService(trained_estimator)
        service = EstimationService(trained_estimator)
        requests = [
            (
                [plans[i % len(plans)], plans[(i * 5 + 3) % len(plans)]][: 1 + i % 2],
                (("cpu",), ("cpu", "io"), None)[i % 3],
            )
            for i in range(30)
        ]
        with ConcurrentEstimationService(
            service, max_batch_size=5, max_wait_ms=1.0
        ) as server:
            futures = [server.submit(p, r) for p, r in requests]
            results = [future.result(timeout=30) for future in futures]
            stats = server.coalescing_stats()
        assert stats.requests == 30
        assert stats.batches > 1  # the batching actually split
        for (request_plans, resources), coalesced in zip(requests, results):
            _assert_identical(
                direct.estimate_workload(request_plans, resources), coalesced
            )

    def test_estimate_query_matches_direct(self, trained_estimator, plans):
        direct = EstimationService(trained_estimator)
        service = EstimationService(trained_estimator)
        with ConcurrentEstimationService(service, max_wait_ms=1.0) as server:
            value = server.estimate_query(plans[0], "cpu")
        assert value == direct.estimate_query(plans[0], "cpu")

    def test_degradation_report_reindexed_per_request(
        self, trained_estimator, plans
    ):
        # Poison the SECOND request's cached features; its report must come
        # back with local plan indices while the first request stays clean.
        service = EstimationService(trained_estimator)
        corrupted = FaultInjector(seed=17).corrupt_features(
            [trained_estimator.extract_plan_features(plans[1])], kind="nan"
        )
        service._feature_cache[id(plans[1])] = (plans[1], corrupted[0])
        with ConcurrentEstimationService(
            service, max_batch_size=64, max_wait_ms=20.0
        ) as server:
            clean_future = server.submit([plans[0]])
            poisoned_future = server.submit([plans[1]])
            clean = clean_future.result(timeout=30)
            poisoned = poisoned_future.result(timeout=30)
        assert clean.degradation is None or clean.degradation.clean
        report = poisoned.degradation
        assert report is not None and not report.clean
        assert all(entry.plan_index == 0 for entry in report.entries)


class TestLatencyBounds:
    def test_max_wait_bounds_queue_latency(self, trained_estimator, plans):
        # A lone request never fills max_batch_size; it must be released by
        # the deadline, not held for company that never arrives.
        service = EstimationService(trained_estimator)
        service.estimate_workload(plans[:1])  # warm cache + compiled kernels
        with ConcurrentEstimationService(
            service, max_batch_size=1024, max_wait_ms=5.0
        ) as server:
            import time

            started = time.perf_counter()
            server.estimate_workload([plans[0]])
            elapsed_ms = (time.perf_counter() - started) * 1000.0
        # Far below any "wait for 1024 plans" horizon; generous enough for CI.
        assert elapsed_ms < 5.0 + 1000.0
        waits = service.stats.queue_wait_p95_ms
        assert waits is not None

    def test_zero_wait_serves_immediately(self, trained_estimator, plans):
        service = EstimationService(trained_estimator)
        with ConcurrentEstimationService(service, max_wait_ms=0.0) as server:
            estimate = server.estimate_workload([plans[0]])
        assert estimate.n_plans == 1


class TestSwapDuringFlight:
    def test_requests_complete_across_concurrent_swap(
        self, trained_estimator, plans, tmp_path
    ):
        # Swap to an identical artifact mid-hammer: every in-flight request
        # must complete finitely on either the old or the new model (same
        # weights here, so results stay bit-identical throughout).
        path = tmp_path / "model.bin"
        trained_estimator.save(path)
        direct = EstimationService(trained_estimator)
        service = EstimationService(trained_estimator)
        expected = {
            id(plan): direct.estimate_workload([plan]) for plan in plans
        }
        stop = threading.Event()
        failures: list[BaseException] = []

        def hammer(server: ConcurrentEstimationService) -> None:
            i = 0
            while not stop.is_set():
                plan = plans[i % len(plans)]
                try:
                    estimate = server.estimate_workload([plan])
                    _assert_identical(expected[id(plan)], estimate)
                except BaseException as exc:  # repro: noqa[REPRO-R5] collected for the assert below
                    failures.append(exc)
                    return
                i += 1

        with ConcurrentEstimationService(
            service, max_batch_size=8, max_wait_ms=0.5
        ) as server:
            threads = [
                threading.Thread(target=hammer, args=(server,)) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            previous = service.swap_artifact(path)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, failures
        assert previous is trained_estimator
        assert service.stats.swaps == 1
        assert service.estimator is not trained_estimator


class TestRejectModeIsolation:
    def test_poisoned_request_fails_alone(self, trained_estimator, plans):
        # In reject mode a poisoned batch is re-served per request, so only
        # the caller with corrupted features sees the rejection.
        service = EstimationService(trained_estimator, on_invalid="reject")
        corrupted = FaultInjector(seed=17).corrupt_features(
            [trained_estimator.extract_plan_features(plans[2])], kind="nan"
        )
        service._feature_cache[id(plans[2])] = (plans[2], corrupted[0])
        direct = EstimationService(trained_estimator)
        with ConcurrentEstimationService(
            service, max_batch_size=64, max_wait_ms=20.0
        ) as server:
            clean_futures = [server.submit([plan]) for plan in plans[:2]]
            poisoned_future = server.submit([plans[2]])
            done, _ = wait(clean_futures + [poisoned_future], timeout=30)
        assert len(done) == 3
        with pytest.raises(PlanValidationError):
            poisoned_future.result()
        for plan, future in zip(plans[:2], clean_futures):
            _assert_identical(direct.estimate_workload([plan]), future.result())


class TestLifecycle:
    def test_close_rejects_queued_and_new_requests(self, trained_estimator, plans):
        service = EstimationService(trained_estimator)
        server = ConcurrentEstimationService(service, max_wait_ms=50.0)
        future = server.submit([plans[0]])
        server.close()
        # The queued request either completed or was drained with an error —
        # it must never hang.
        assert future.done()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit([plans[0]])
        server.close()  # idempotent

    def test_submit_validates_eagerly(self, trained_estimator, plans):
        service = EstimationService(trained_estimator)
        with ConcurrentEstimationService(service) as server:
            with pytest.raises(ValueError, match="at least one plan"):
                server.submit([])
            with pytest.raises(ValueError, match="unknown resource"):
                server.submit([plans[0]], ("latency",))

    def test_rejects_non_service(self):
        with pytest.raises(TypeError, match="EstimationService"):
            ConcurrentEstimationService(object())


class TestServiceThreadSafety:
    def test_concurrent_callers_keep_stats_consistent(
        self, trained_estimator, plans
    ):
        service = EstimationService(trained_estimator, cache_size=8)
        n_threads, n_calls = 6, 25
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            for i in range(n_calls):
                try:
                    plan = plans[(seed * 7 + i) % len(plans)]
                    service.estimate_workload([plan])
                except BaseException as exc:  # repro: noqa[REPRO-R5] collected for the assert below
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert service.stats.workloads_served == n_threads * n_calls
        assert service.stats.plans_served == n_threads * n_calls
        assert (
            service.stats.cache_hits + service.stats.cache_misses
            == n_threads * n_calls
        )
        assert len(service._feature_cache) <= 8

    def test_stats_snapshot_is_consistent_copy(self):
        stats = ServiceStats()
        stats.record_batch(3, 12, [1.0, 2.0, 4.0])
        stats.record_batch(1, 2, [8.0])
        snap = stats.snapshot()
        assert snap.batches_served == 2
        assert snap.plans_coalesced == 14
        assert snap.queue_wait_samples == 4
        assert snap.queue_wait_p50_ms == pytest.approx(3.0)
        assert snap.queue_wait_p95_ms == pytest.approx(7.4, abs=0.2)
        stats.record_batch(1, 1, [100.0])
        assert snap.batches_served == 2  # frozen copy, not a view

    def test_fresh_stats_equal(self):
        assert ServiceStats() == ServiceStats()


class TestLoadGenerator:
    def test_trace_is_deterministic(self, scenarios):
        config = LoadConfig(mode="open", requests=200, warmup=20, qps=500.0, seed=5)
        assert build_trace(scenarios, config) == build_trace(scenarios, config)
        reseeded = LoadConfig(mode="open", requests=200, warmup=20, qps=500.0, seed=6)
        assert build_trace(scenarios, config) != build_trace(scenarios, reseeded)

    def test_trace_shape(self, scenarios):
        config = LoadConfig(mode="closed", requests=50, warmup=10, seed=5)
        trace = build_trace(scenarios, config)
        assert len(trace) == 60
        assert sum(spec.warmup for spec in trace) == 10
        names = {spec.scenario for spec in trace}
        assert names <= {"interactive", "batch4"}
        for spec in trace:
            assert len(spec.plan_indices) in (1, 4)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="mode"):
            LoadConfig(mode="sideways")
        with pytest.raises(ValueError, match="qps"):
            LoadConfig(mode="open", qps=0.0)
        with pytest.raises(ValueError, match="concurrency"):
            LoadConfig(concurrency=0)

    def test_closed_loop_run_counts_every_request(
        self, trained_estimator, scenarios
    ):
        service = EstimationService(trained_estimator)
        config = LoadConfig(mode="closed", requests=60, warmup=8, concurrency=4, seed=9)
        with ConcurrentEstimationService(
            service, max_batch_size=32, max_wait_ms=1.0
        ) as server:
            report = run_load(server, scenarios, config)
        assert report.requests == 60
        assert report.errors == 0
        assert sum(report.scenario_counts.values()) == 60
        assert report.throughput_rps > 0
        assert report.latency.p50_ms <= report.latency.p99_ms <= report.latency.max_ms

    def test_open_loop_run_counts_every_request(self, trained_estimator, scenarios):
        service = EstimationService(trained_estimator)
        config = LoadConfig(mode="open", requests=40, warmup=8, qps=400.0, seed=9)
        with ConcurrentEstimationService(
            service, max_batch_size=32, max_wait_ms=1.0
        ) as server:
            report = run_load(server, scenarios, config)
        assert report.requests == 40
        assert report.errors == 0


class TestServeBench:
    def test_serve_bench_record_round_trips(self, trained_estimator, scenarios):
        service = EstimationService(trained_estimator)
        config = ServeBenchConfig(
            load=LoadConfig(mode="closed", requests=60, warmup=8, concurrency=4, seed=9),
            max_batch_size=32,
            max_wait_ms=1.0,
        )
        result = run_serve_bench(service, scenarios, config)
        record = result.to_record()
        for key in (
            "throughput_rps",
            "throughput_ratio",
            "sequential_rps",
            "latency_p99_ms",
            "p99_budget_ms",
            "p99_within_budget",
            "errors",
        ):
            assert key in record
        assert record["errors"] == 0
        assert record["throughput_rps"] > 0
        assert isinstance(result.render(), str)

    def test_standard_scenarios_mixes(self):
        tpch = standard_scenarios("tpch", pool_size=4)
        assert [s.name for s in tpch] == ["tpch-interactive", "tpch-batch8"]
        with pytest.raises(ValueError, match="unknown scenario mix"):
            standard_scenarios("nope")


class TestPoisonedRetrainRollback:
    def test_canary_rejects_poisoned_candidate_under_coalesced_fire(
        self, trained_estimator, plans, executor, tmp_path, monkeypatch
    ):
        """A poisoned background-refit candidate must never reach callers.

        The retrain controller fits a candidate whose artifact the
        FaultInjector has poisoned (CRC-valid, predicts 1e200 — only the
        swap canary can catch it) while coalesced callers hammer the
        service.  The canary must reject the candidate, the incumbent must
        keep serving bit-identically throughout, and the registry must
        record the failed promotion.
        """
        from repro.adaptive import (
            DriftEvent,
            ModelRegistry,
            ObservationLog,
            RetrainConfig,
            RetrainController,
        )
        from repro.core.serialization import load_estimator

        service = EstimationService(trained_estimator)
        direct = EstimationService(trained_estimator)
        expected = {id(plan): direct.estimate_workload([plan]) for plan in plans}

        # Feedback corpus for the refit: serve + complete every plan once.
        log = ObservationLog(capacity=64).attach(service)
        for plan in plans:
            service.estimate_workload([plan])
            assert log.complete(plan, executor.execute(plan)) is not None

        registry = ModelRegistry(tmp_path / "registry")
        registry.register(trained_estimator, note="incumbent")
        registry.promote("v0001")
        controller = RetrainController(
            service,
            log,
            registry,
            # No holdout gate: only the canary stands between the poisoned
            # candidate and the live session.
            RetrainConfig(min_observations=16, max_holdout_error=None, seed=5),
        )
        injector = FaultInjector(seed=23)
        original_fit = controller._fit_candidate

        def poisoned_fit(corpus):
            candidate = original_fit(corpus)
            path = injector.poisoned_artifact(
                candidate, tmp_path / "poisoned.bin", mode="huge"
            )
            return load_estimator(path)

        monkeypatch.setattr(controller, "_fit_candidate", poisoned_fit)

        event = DriftEvent(
            sequence=len(plans),
            resource="cpu",
            median_relative_error=0.9,
            band_hit_rate=0.1,
            n=16,
            trip_threshold=0.25,
            reason="relative-error",
        )
        stop = threading.Event()
        failures: list[BaseException] = []

        def hammer(server: ConcurrentEstimationService) -> None:
            i = 0
            while not stop.is_set():
                plan = plans[i % len(plans)]
                try:
                    _assert_identical(
                        expected[id(plan)], server.estimate_workload([plan])
                    )
                except BaseException as exc:  # repro: noqa[REPRO-R5] collected for the assert below
                    failures.append(exc)
                    return
                i += 1

        with ConcurrentEstimationService(
            service, max_batch_size=8, max_wait_ms=0.5
        ) as server:
            threads = [
                threading.Thread(target=hammer, args=(server,)) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            refit = controller.handle_drift(event)
            assert refit is not None
            controller.join(timeout=120.0)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)

        assert not failures, failures
        (outcome,) = controller.history()
        assert outcome.status == "canary-rejected"
        assert outcome.version == "v0002"
        # Incumbent untouched: same object, zero successful swaps.
        assert service.estimator is trained_estimator
        stats = service.stats.snapshot()
        assert stats.swaps == 0
        assert stats.failed_swaps == 1
        # The failed promotion is a recorded registry fact, not a deleted file.
        assert registry.active == "v0001"
        rejected = registry.manifest("v0002")
        assert rejected.status == "rejected"
        assert "canary" in rejected.note
        assert registry.artifact_path("v0002").exists()
        assert [e["event"] for e in registry.events()] == [
            "register", "promote", "register", "reject",
        ]
