"""Tests for schema metadata: columns, tables, indexes, catalogs."""

from __future__ import annotations

import pytest

from repro.catalog.schema import (
    PAGE_SIZE_BYTES,
    Catalog,
    Column,
    ColumnType,
    Index,
    Table,
)


def make_table(rows: int = 10_000) -> Table:
    return Table(
        "t",
        [
            Column("id", ColumnType.INTEGER),
            Column("payload", ColumnType.VARCHAR, width=60),
            Column("price", ColumnType.DECIMAL),
        ],
        row_count=rows,
    )


class TestColumn:
    def test_default_width_comes_from_type(self):
        assert Column("a", ColumnType.INTEGER).width == 4
        assert Column("b", ColumnType.BIGINT).width == 8

    def test_explicit_width_wins(self):
        assert Column("a", ColumnType.VARCHAR, width=120).width == 120

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Column("a", ColumnType.INTEGER, width=0)

    def test_resolved_ndv_defaults_to_row_count(self):
        assert Column("a").resolved_ndv(5_000) == 5_000
        assert Column("a", ndv=10).resolved_ndv(5_000) == 10

    def test_resolved_distribution_defaults_to_uniform(self):
        dist = Column("a", ndv=4).resolved_distribution(100)
        assert dist.eq_selectivity(0) == pytest.approx(0.25)


class TestTable:
    def test_row_width_includes_header(self):
        table = make_table()
        assert table.row_width == 10 + 4 + 60 + 8

    def test_pages_scale_with_rows(self):
        small = make_table(1_000)
        large = make_table(100_000)
        assert large.pages > small.pages
        assert small.pages >= 1

    def test_pages_consistent_with_page_size(self):
        table = make_table(50_000)
        assert table.pages * PAGE_SIZE_BYTES >= table.total_bytes * 0.9

    def test_column_lookup(self):
        table = make_table()
        assert table.column("price").ctype is ColumnType.DECIMAL
        with pytest.raises(KeyError):
            table.column("missing")

    def test_width_of_projection(self):
        table = make_table()
        assert table.width_of(["id"]) < table.width_of(["id", "payload"])
        assert table.width_of(None) == table.row_width

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", [Column("a"), Column("a")], row_count=1)

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", [Column("a")], row_count=-1)


class TestIndex:
    def test_depth_grows_with_table_size(self):
        small = make_table(1_000)
        large = make_table(10_000_000)
        index = Index("ix", "t", ["id"])
        assert index.depth(large) > index.depth(small)
        assert index.depth(small) >= 1

    def test_clustered_leaf_wider_than_nonclustered(self):
        table = make_table(100_000)
        clustered = Index("cx", "t", ["id"], clustered=True)
        nonclustered = Index("ix", "t", ["id"])
        assert clustered.leaf_pages(table) > nonclustered.leaf_pages(table)

    def test_covers(self):
        table = make_table()
        clustered = Index("cx", "t", ["id"], clustered=True)
        narrow = Index("ix", "t", ["id"])
        covering = Index("ix2", "t", ["id"], include_columns=["price"])
        assert clustered.covers(["payload", "price"])
        assert not narrow.covers(["price"])
        assert covering.covers(["id", "price"])

    def test_fanout_positive(self):
        table = make_table()
        assert Index("ix", "t", ["id"]).fanout(table) > 2


class TestCatalog:
    def build(self) -> Catalog:
        cat = Catalog("db")
        cat.add_table(make_table())
        cat.add_index(Index("cx", "t", ["id"], clustered=True))
        cat.add_index(Index("ix_price", "t", ["price"]))
        return cat

    def test_duplicate_table_rejected(self):
        cat = self.build()
        with pytest.raises(ValueError):
            cat.add_table(make_table())

    def test_index_on_unknown_table_rejected(self):
        cat = self.build()
        with pytest.raises(ValueError):
            cat.add_index(Index("bad", "missing", ["id"]))

    def test_index_on_unknown_column_rejected(self):
        cat = self.build()
        with pytest.raises(ValueError):
            cat.add_index(Index("bad", "t", ["missing"]))

    def test_lookup_helpers(self):
        cat = self.build()
        assert cat.table("t").name == "t"
        assert cat.clustered_index("t").name == "cx"
        assert cat.find_index_on("t", "price").name == "ix_price"
        assert cat.find_index_on("t", "payload") is None
        assert len(cat.indexes_on("t")) == 2

    def test_size_accounting(self):
        cat = self.build()
        assert cat.total_bytes == cat.table("t").total_bytes
        assert cat.total_gb == pytest.approx(cat.total_bytes / 1024**3)

    def test_summary_mentions_tables(self):
        assert "t" in self.build().summary()
