"""Tests for the deterministic RNG helpers."""

from __future__ import annotations

from repro.data.rng import derive_seed, make_rng


def test_derive_seed_is_deterministic():
    assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")


def test_derive_seed_depends_on_labels():
    assert derive_seed(1, "a") != derive_seed(1, "b")


def test_derive_seed_depends_on_base_seed():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derive_seed_is_non_negative():
    for seed in range(10):
        assert derive_seed(seed, "component") >= 0


def test_make_rng_streams_are_reproducible():
    a = make_rng(7, "x").random(5)
    b = make_rng(7, "x").random(5)
    assert (a == b).all()


def test_make_rng_streams_differ_across_names():
    a = make_rng(7, "x").random(5)
    b = make_rng(7, "y").random(5)
    assert not (a == b).all()
