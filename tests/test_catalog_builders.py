"""Tests for the TPC-H / TPC-DS / Real-1 / Real-2 schema builders."""

from __future__ import annotations

import pytest

from repro.catalog.real import build_real1_catalog, build_real2_catalog
from repro.catalog.tpcds import build_tpcds_catalog
from repro.catalog.tpch import TPCH_TABLES, build_tpch_catalog


class TestTpchCatalog:
    def test_all_tables_present(self):
        catalog = build_tpch_catalog(scale_factor=0.1)
        for table in TPCH_TABLES:
            assert table in catalog.tables

    def test_row_counts_scale_with_scale_factor(self):
        small = build_tpch_catalog(scale_factor=1.0)
        large = build_tpch_catalog(scale_factor=4.0)
        assert large.table("lineitem").row_count == 4 * small.table("lineitem").row_count
        # Fixed tables do not scale.
        assert large.table("nation").row_count == small.table("nation").row_count == 25

    def test_database_size_roughly_matches_scale_factor(self):
        catalog = build_tpch_catalog(scale_factor=1.0)
        assert 0.4 <= catalog.total_gb <= 2.5

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            build_tpch_catalog(scale_factor=0.0)

    def test_primary_indexes_exist(self):
        catalog = build_tpch_catalog(scale_factor=0.1)
        assert catalog.clustered_index("lineitem") is not None
        assert catalog.find_index_on("orders", "o_orderdate") is not None

    def test_skew_recorded_in_properties(self):
        catalog = build_tpch_catalog(scale_factor=0.1, skew_z=2.0)
        assert catalog.properties["skew_z"] == 2.0

    def test_skew_changes_distribution(self):
        uniform = build_tpch_catalog(scale_factor=0.1, skew_z=0.0)
        skewed = build_tpch_catalog(scale_factor=0.1, skew_z=2.0)
        col_u = uniform.table("lineitem").column("l_quantity")
        col_s = skewed.table("lineitem").column("l_quantity")
        rows = uniform.table("lineitem").row_count
        assert col_s.resolved_distribution(rows).eq_selectivity(0) > col_u.resolved_distribution(
            rows
        ).eq_selectivity(0)


class TestTpcdsCatalog:
    def test_fact_and_dimension_tables_present(self):
        catalog = build_tpcds_catalog(scale_factor=1.0)
        for table in ("store_sales", "catalog_sales", "web_sales", "item", "date_dim", "customer"):
            assert table in catalog.tables

    def test_default_size_near_10gb(self):
        catalog = build_tpcds_catalog()
        assert 3.0 <= catalog.total_gb <= 25.0

    def test_indexes_reference_valid_columns(self):
        catalog = build_tpcds_catalog(scale_factor=0.5)
        for index in catalog.indexes.values():
            table = catalog.table(index.table_name)
            for column in index.key_columns:
                assert table.has_column(column)


class TestRealCatalogs:
    def test_real1_size_near_9gb(self):
        catalog = build_real1_catalog()
        assert 5.0 <= catalog.total_gb <= 14.0

    def test_real2_size_near_12gb(self):
        catalog = build_real2_catalog()
        assert 8.0 <= catalog.total_gb <= 18.0

    def test_real2_larger_than_real1(self):
        assert build_real2_catalog().total_bytes > build_real1_catalog().total_bytes

    def test_real2_has_enough_tables_for_12_way_joins(self):
        catalog = build_real2_catalog()
        assert len(catalog.tables) >= 13

    def test_schemas_do_not_overlap_tpch(self):
        """The real workloads must be structurally unrelated to TPC-H."""
        tpch = set(build_tpch_catalog(scale_factor=0.01).tables)
        real1 = set(build_real1_catalog().tables)
        real2 = set(build_real2_catalog().tables)
        assert not (tpch & real1)
        assert not (tpch & real2)
