"""Fault-injection tests for the serving guardrails (`repro.robustness`).

Every failure class the robustness layer defends against is injected
deterministically (seeded :class:`FaultInjector`) and the expected
degradation tier, rejection or rollback is asserted:

* broken models -> SCALING / FAMILY_RATE / GLOBAL_DEFAULT ladder tiers;
* non-finite features -> flagged degradation or up-front rejection;
* corrupt / truncated / wrong-version artifacts -> codec errors;
* transient IO -> bounded retry with backoff;
* plausible-but-poisoned artifacts -> canary-failed swap with rollback.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.api import EstimationService
from repro.core.serialization import EstimatorCodecError, save_estimator
from repro.features.definitions import FeatureMode
from repro.features.extractor import OperatorFeatures
from repro.robustness import (
    ArtifactSwapError,
    DegradationTier,
    FaultInjector,
    PlanValidationError,
    PlanValidator,
    load_estimator_with_retry,
    run_canary_checks,
)


@pytest.fixture(scope="module")
def plans(tpch_plans):
    return tpch_plans


@pytest.fixture(scope="module")
def extracted(trained_estimator, plans):
    return [trained_estimator.extract_plan_features(plan) for plan in plans]


@pytest.fixture(scope="module")
def artifact(trained_estimator, tmp_path_factory):
    path = tmp_path_factory.mktemp("robustness") / "model.bin"
    trained_estimator.save(path)
    return path


@pytest.fixture
def injector():
    return FaultInjector(seed=17)


def _poisonable_key(estimator, extracted):
    """A (family, resource) with a trained model set, scaling fallback and
    family rate whose family appears in the fixture workload — so every
    ladder tier below MODEL is reachable by stripping fallbacks one by one."""
    present = {of.family for plan in extracted for of in plan.values()}
    for key in sorted(estimator.model_sets, key=lambda k: (k[0].value, k[1])):
        family, _ = key
        if (
            family in present
            and key in estimator.scaling_fallbacks
            and key in estimator.family_rates
        ):
            return key
    raise AssertionError("fixture workload has no poisonable (family, resource)")


def _degraded(report):
    """Entries degraded off the model tier (families that never had a model
    set are legitimately served by the global default on clean inputs)."""
    return [e for e in report.entries if e.reason != "no-model-set"]


class TestDegradationLadder:
    def test_clean_inputs_are_bit_identical_and_undegraded(
        self, trained_estimator, plans, extracted
    ):
        guarded = trained_estimator.estimate_extracted_workload(
            plans, extracted, guardrails=True
        )
        bare = trained_estimator.estimate_extracted_workload(
            plans, extracted, guardrails=False
        )
        assert bare.degradation is None
        report = guarded.degradation
        assert report is not None
        assert not _degraded(report)
        assert not report.ood_plans
        for resource in trained_estimator.resources:
            assert np.array_equal(
                guarded.query_totals(resource), bare.query_totals(resource)
            )

    @pytest.mark.parametrize(
        "mode,reason",
        [
            ("raise", "model-error"),
            ("nan", "invalid-prediction"),
            ("negative", "invalid-prediction"),
        ],
    )
    def test_broken_model_degrades_to_scaling_tier(
        self, trained_estimator, plans, extracted, injector, mode, reason
    ):
        family, resource = _poisonable_key(trained_estimator, extracted)
        poisoned = injector.poison_model(trained_estimator, family, resource, mode=mode)
        estimate = poisoned.estimate_extracted_workload(plans, extracted, (resource,))
        degraded = _degraded(estimate.degradation)
        assert degraded
        assert {e.tier for e in degraded} == {DegradationTier.SCALING}
        assert {e.reason for e in degraded} == {reason}
        totals = estimate.query_totals(resource)
        assert np.isfinite(totals).all() and (totals >= 0.0).all()

    def test_family_rate_tier_without_scaling_fallback(
        self, trained_estimator, plans, extracted, injector
    ):
        family, resource = _poisonable_key(trained_estimator, extracted)
        poisoned = injector.poison_model(trained_estimator, family, resource)
        poisoned.scaling_fallbacks.pop((family, resource))
        estimate = poisoned.estimate_extracted_workload(plans, extracted, (resource,))
        degraded = _degraded(estimate.degradation)
        assert degraded
        assert {e.tier for e in degraded} == {DegradationTier.FAMILY_RATE}
        totals = estimate.query_totals(resource)
        assert np.isfinite(totals).all() and (totals >= 0.0).all()

    def test_global_default_tier_without_family_fallbacks(
        self, trained_estimator, plans, extracted, injector
    ):
        family, resource = _poisonable_key(trained_estimator, extracted)
        poisoned = injector.poison_model(trained_estimator, family, resource)
        poisoned.scaling_fallbacks.pop((family, resource))
        poisoned.family_rates.pop((family, resource))
        estimate = poisoned.estimate_extracted_workload(plans, extracted, (resource,))
        degraded = _degraded(estimate.degradation)
        assert degraded
        assert {e.tier for e in degraded} == {DegradationTier.GLOBAL_DEFAULT}
        totals = estimate.query_totals(resource)
        assert np.isfinite(totals).all() and (totals >= 0.0).all()

    def test_exhausted_ladder_serves_explicit_zero(
        self, trained_estimator, plans, extracted, injector
    ):
        family, resource = _poisonable_key(trained_estimator, extracted)
        poisoned = injector.poison_model(trained_estimator, family, resource)
        poisoned.scaling_fallbacks.pop((family, resource))
        poisoned.family_rates.pop((family, resource))
        poisoned.fallbacks.pop(resource)
        estimate = poisoned.estimate_extracted_workload(plans, extracted, (resource,))
        degraded = _degraded(estimate.degradation)
        assert degraded
        for entry in degraded:
            assert entry.tier is DegradationTier.GLOBAL_DEFAULT
            assert entry.reason.endswith("; no-fallback-available")
            assert estimate.operators(entry.plan_index, resource)[entry.node_id] == 0.0

    def test_degradation_reports_are_deterministic(
        self, trained_estimator, plans, extracted, injector
    ):
        family, resource = _poisonable_key(trained_estimator, extracted)
        poisoned = injector.poison_model(trained_estimator, family, resource)
        first = poisoned.estimate_extracted_workload(plans, extracted, (resource,))
        second = poisoned.estimate_extracted_workload(plans, extracted, (resource,))
        assert first.degradation.entries == second.degradation.entries
        assert "degraded:" in first.degradation.summary()
        assert DegradationTier.SCALING in first.degradation.tiers_used()


class TestFeatureFaults:
    def test_corrupted_features_degrade_instead_of_crashing(
        self, trained_estimator, plans, extracted, injector
    ):
        corrupted = injector.corrupt_features(extracted, rate=0.3, kind="nan")
        estimate = trained_estimator.estimate_extracted_workload(plans, corrupted)
        reasons = {e.reason for e in estimate.degradation.entries}
        assert any(r.startswith("non-finite-features") for r in reasons)
        for resource in trained_estimator.resources:
            totals = estimate.query_totals(resource)
            assert np.isfinite(totals).all() and (totals >= 0.0).all()

    def test_validator_rejects_corrupted_features(
        self, trained_estimator, extracted, injector
    ):
        corrupted = injector.corrupt_features(extracted, kind="nan")
        validator = PlanValidator.for_estimator(trained_estimator)
        report = validator.validate_workload(corrupted)
        assert report.fatal_issues
        assert "non-finite" in report.summary()
        with pytest.raises(PlanValidationError, match="non-finite"):
            validator.require_valid(corrupted)

    def test_feature_corruption_is_deterministic(self, extracted):
        first = FaultInjector(seed=3).corrupt_features(extracted, kind="inf")
        second = FaultInjector(seed=3).corrupt_features(extracted, kind="inf")
        assert first == second
        corrupted_values = [
            value
            for plan in first
            for of in plan.values()
            for value in of.values.values()
            if not np.isfinite(value)
        ]
        assert corrupted_values  # at least one operator is always corrupted

    def test_service_reject_mode_fails_fast(
        self, trained_estimator, plans, extracted, injector
    ):
        service = EstimationService(trained_estimator, on_invalid="reject")
        corrupted = injector.corrupt_features(extracted, kind="nan")
        for plan, features in zip(plans, corrupted):
            service._feature_cache[id(plan)] = (plan, features)
        with pytest.raises(PlanValidationError):
            service.estimate_workload(plans)
        assert service.stats.workloads_served == 0

    def test_service_flag_mode_serves_and_counts(
        self, trained_estimator, plans, extracted, injector
    ):
        service = EstimationService(trained_estimator)
        corrupted = injector.corrupt_features(extracted, kind="nan")
        for plan, features in zip(plans, corrupted):
            service._feature_cache[id(plan)] = (plan, features)
        estimate = service.estimate_workload(plans)
        report = estimate.degradation
        assert report is not None and not report.clean
        assert service.stats.degraded_operators == report.count
        assert service.stats.workloads_served == 1


class TestArtifactFaults:
    def test_corrupt_artifact_rejected(self, artifact, injector, tmp_path):
        bad = injector.corrupt_artifact(artifact, tmp_path / "corrupt.bin")
        with pytest.raises(EstimatorCodecError):
            EstimationService.from_artifact(bad)

    def test_truncated_artifact_rejected(self, artifact, injector, tmp_path):
        bad = injector.truncate_artifact(artifact, tmp_path / "truncated.bin")
        with pytest.raises(EstimatorCodecError):
            EstimationService.from_artifact(bad)

    def test_wrong_version_artifact_rejected(self, artifact, injector, tmp_path):
        bad = injector.wrong_version_artifact(artifact, tmp_path / "future.bin")
        with pytest.raises(EstimatorCodecError, match="version"):
            EstimationService.from_artifact(bad)

    def test_artifact_corruption_is_deterministic(self, artifact, tmp_path):
        first = FaultInjector(seed=9).corrupt_artifact(artifact, tmp_path / "a.bin")
        second = FaultInjector(seed=9).corrupt_artifact(artifact, tmp_path / "b.bin")
        other = FaultInjector(seed=10).corrupt_artifact(artifact, tmp_path / "c.bin")
        assert first.read_bytes() == second.read_bytes()
        assert first.read_bytes() != other.read_bytes()


class TestRetry:
    def test_transient_failures_are_retried_with_backoff(self, artifact, injector):
        reader = injector.transient_reader(failures=2)
        sleeps: list[float] = []
        estimator = load_estimator_with_retry(
            artifact, retries=3, backoff=0.05, sleep=sleeps.append, reader=reader
        )
        assert reader.calls == 3
        assert sleeps == [0.05, 0.1]  # exponential backoff, no sleep before try 1
        assert estimator.resources == ("cpu", "io")

    def test_exhausted_retries_surface_codec_error(self, artifact, injector):
        reader = injector.transient_reader(failures=10)
        sleeps: list[float] = []
        with pytest.raises(EstimatorCodecError, match="after 3 attempt"):
            load_estimator_with_retry(
                artifact, retries=2, backoff=0.01, sleep=sleeps.append, reader=reader
            )
        assert reader.calls == 3
        assert len(sleeps) == 2

    def test_decode_errors_are_never_retried(self, tmp_path):
        calls: list[object] = []

        def reader(path):
            calls.append(path)
            return b"\x00" * 64

        with pytest.raises(EstimatorCodecError):
            load_estimator_with_retry(
                tmp_path / "junk.bin", sleep=lambda _: None, reader=reader
            )
        assert len(calls) == 1

    def test_missing_file_is_permanent_not_retried(self, tmp_path):
        calls: list[object] = []

        def reader(path):
            calls.append(path)
            raise FileNotFoundError(path)

        with pytest.raises(FileNotFoundError):
            EstimationService.from_artifact(tmp_path / "missing.bin", reader=reader)
        assert len(calls) == 1

    def test_service_from_artifact_retries_then_serves_identically(
        self, artifact, injector, plans, trained_estimator
    ):
        reader = injector.transient_reader(failures=1)
        service = EstimationService.from_artifact(artifact, backoff=0.0, reader=reader)
        assert reader.calls == 2
        assert np.array_equal(
            service.estimate_workload(plans, ("cpu",)).query_totals("cpu"),
            trained_estimator.estimate_workload(plans, ("cpu",)).query_totals("cpu"),
        )


class TestCanaryChecks:
    def test_clean_estimator_passes(self, trained_estimator):
        report = run_canary_checks(trained_estimator)
        assert report.passed
        assert report.n_model_sets == len(trained_estimator.model_sets)
        assert report.n_predictions > 0
        assert "passed" in report.summary()

    def test_non_finite_global_fallback_fails(self, trained_estimator):
        candidate = copy.deepcopy(trained_estimator)
        candidate.fallbacks["cpu"].per_tuple = float("nan")
        report = run_canary_checks(candidate)
        assert not report.passed
        assert any(
            failure.family is None and failure.resource == "cpu"
            for failure in report.failures
        )
        assert "FAILED" in report.summary()


class TestSwapArtifact:
    def test_successful_swap_promotes_and_clears_cache(
        self, trained_estimator, artifact, plans
    ):
        service = EstimationService(trained_estimator)
        before = service.estimate_workload(plans, ("cpu",)).query_totals("cpu")
        assert len(service._feature_cache) > 0
        previous = service.swap_artifact(artifact)
        assert previous is trained_estimator
        assert service.estimator is not trained_estimator
        assert service.stats.swaps == 1 and service.stats.failed_swaps == 0
        assert len(service._feature_cache) == 0
        # The artifact holds the same trained weights: service is unchanged
        # observationally even though the estimator object was replaced.
        assert np.array_equal(
            service.estimate_workload(plans, ("cpu",)).query_totals("cpu"), before
        )

    @pytest.mark.parametrize("mode", ["nan", "huge"])
    def test_poisoned_candidate_fails_canary_and_rolls_back(
        self, trained_estimator, plans, injector, tmp_path, mode
    ):
        service = EstimationService(trained_estimator)
        before = service.estimate_workload(plans, ("cpu",)).query_totals("cpu")
        bad = injector.poisoned_artifact(
            trained_estimator, tmp_path / f"{mode}.bin", mode=mode
        )
        with pytest.raises(ArtifactSwapError, match="canary"):
            service.swap_artifact(bad)
        assert service.estimator is trained_estimator
        assert service.stats.failed_swaps == 1 and service.stats.swaps == 0
        assert np.array_equal(
            service.estimate_workload(plans, ("cpu",)).query_totals("cpu"), before
        )

    def test_corrupt_candidate_fails_load_and_rolls_back(
        self, trained_estimator, artifact, injector, tmp_path
    ):
        service = EstimationService(trained_estimator)
        bad = injector.corrupt_artifact(artifact, tmp_path / "bad.bin")
        with pytest.raises(ArtifactSwapError, match="failed to load"):
            service.swap_artifact(bad)
        assert service.estimator is trained_estimator
        assert service.stats.failed_swaps == 1

    def test_feature_mode_mismatch_rejected(self, trained_estimator, tmp_path):
        candidate = copy.deepcopy(trained_estimator)
        candidate.feature_mode = FeatureMode.ESTIMATED
        path = save_estimator(candidate, tmp_path / "estimated.bin")
        service = EstimationService(trained_estimator)
        with pytest.raises(ArtifactSwapError, match="feature mode"):
            service.swap_artifact(path)
        assert service.estimator is trained_estimator
        assert service.stats.failed_swaps == 1

    def test_candidate_missing_served_resource_rejected(
        self, trained_estimator, tmp_path
    ):
        candidate = copy.deepcopy(trained_estimator)
        candidate.resources = ("cpu",)
        for key in [k for k in candidate.model_sets if k[1] == "io"]:
            candidate.model_sets.pop(key)
        candidate.fallbacks.pop("io", None)
        path = save_estimator(candidate, tmp_path / "cpu_only.bin")
        service = EstimationService(trained_estimator)
        with pytest.raises(ArtifactSwapError, match="resource"):
            service.swap_artifact(path)
        assert service.estimator is trained_estimator
        assert service.stats.failed_swaps == 1


class TestFeatureCacheCollision:
    def test_stale_id_collision_entry_is_dropped(self, trained_estimator, plans):
        """Regression: a recycled id() must not serve another plan's features."""
        service = EstimationService(trained_estimator)
        plan, other = plans[0], plans[1]
        other_features = trained_estimator.extract_plan_features(other)
        # Simulate id() reuse: the cache maps this plan's id to a different
        # (garbage-collected in real life) plan object.
        service._feature_cache[id(plan)] = (other, other_features)
        features = service._plan_features(plan)
        assert service.stats.cache_misses == 1 and service.stats.cache_hits == 0
        assert features is not other_features
        assert features == trained_estimator.extract_plan_features(plan)
        assert service._feature_cache[id(plan)][0] is plan
        # The repopulated entry hits on the next lookup.
        assert service._plan_features(plan) is features
        assert service.stats.cache_hits == 1


class TestOutOfDistribution:
    @pytest.fixture()
    def blown(self, extracted):
        """The fixture workload with plan 0 pushed far outside the envelopes."""
        modified = list(extracted)
        modified[0] = {
            node_id: OperatorFeatures(
                family=of.family,
                values={
                    name: value * 1e12 + 1e12 for name, value in of.values.items()
                },
            )
            for node_id, of in extracted[0].items()
        }
        return modified

    def test_out_of_envelope_plans_flagged(self, trained_estimator, plans, blown):
        estimate = trained_estimator.estimate_extracted_workload(
            plans, blown, ("cpu",), ood_threshold=1.0
        )
        report = estimate.degradation
        assert 0 in report.ood_plans
        assert report.ood_plans[0] > 1.0
        assert "ood_plans" in report.summary()

    def test_validator_scores_ood_as_advisory(self, trained_estimator, blown):
        validator = PlanValidator.for_estimator(trained_estimator)
        report = validator.validate_workload(blown)
        assert not report.fatal_issues
        assert 0 in report.plans_with("out-of-distribution")
        validator.require_valid(blown)  # advisory issues never raise

    def test_unknown_family_flagged_without_envelopes(self, extracted):
        report = PlanValidator(envelopes={}).validate_workload(extracted[:2])
        assert {issue.kind for issue in report.issues} == {"unknown-family"}
        assert not report.fatal_issues
