"""Tests for feature definitions, dependencies and extraction."""

from __future__ import annotations

import pytest

from repro.features.definitions import (
    FeatureMode,
    GLOBAL_FEATURES,
    OPERATOR_FAMILIES,
    OperatorFamily,
    features_for_family,
    operator_family,
    scalable_features,
)
from repro.features.dependencies import FEATURE_DEPENDENCIES, dependent_features
from repro.features.extractor import FeatureExtractor
from repro.plan.operators import OperatorType


class TestDefinitions:
    def test_every_operator_type_has_a_family(self):
        for op_type in OperatorType:
            assert op_type in OPERATOR_FAMILIES
            assert isinstance(operator_family(op_type), OperatorFamily)

    def test_family_features_include_globals(self):
        for family in OperatorFamily:
            names = features_for_family(family)
            for feature in GLOBAL_FEATURES:
                assert feature in names

    def test_paper_table2_features_present(self):
        assert "TSIZE" in features_for_family(OperatorFamily.SCAN)
        assert "INDEXDEPTH" in features_for_family(OperatorFamily.SEEK)
        assert "MINCOMP" in features_for_family(OperatorFamily.SORT)
        assert "SSEEKTABLE" in features_for_family(OperatorFamily.NESTED_LOOP_JOIN)
        assert "SINSUM" in features_for_family(OperatorFamily.MERGE_JOIN)
        assert "CHASHCOL" in features_for_family(OperatorFamily.HASH_AGGREGATE)

    def test_scalable_features_exclude_categoricals_and_counts(self):
        for family in OperatorFamily:
            scalable = scalable_features(family, "cpu")
            assert "OUTPUTUSAGE" not in scalable
            assert "CSORTCOL" not in scalable
            assert "CINNERCOL" not in scalable

    def test_io_excludes_cpu_only_totals(self):
        cpu = scalable_features(OperatorFamily.SORT, "cpu")
        io = scalable_features(OperatorFamily.SORT, "io")
        assert "MINCOMP" in cpu
        assert "MINCOMP" not in io


class TestDependencies:
    def test_sintot_depends_on_cin_but_sinavg_does_not(self):
        assert "SINTOT1" in dependent_features("CIN1")
        assert "SINAVG1" not in dependent_features("CIN1")

    def test_souttot_depends_on_cout_and_width(self):
        assert "SOUTTOT" in dependent_features("COUT")
        assert "SOUTTOT" in dependent_features("SOUTAVG")

    def test_tsize_drives_pages_and_estiocost(self):
        deps = dependent_features("TSIZE")
        assert "PAGES" in deps and "ESTIOCOST" in deps

    def test_unknown_feature_has_no_dependencies(self):
        assert dependent_features("NOT_A_FEATURE") == frozenset()

    def test_dependency_table_references_known_features(self):
        known = set(GLOBAL_FEATURES)
        for family in OperatorFamily:
            known.update(features_for_family(family))
        for feature, dependents in FEATURE_DEPENDENCIES.items():
            assert feature in known
            assert dependents <= known


class TestExtraction:
    def test_cout_and_souttot_consistent(self, planner, tpch_queries):
        extractor = FeatureExtractor(FeatureMode.EXACT)
        plan = planner.plan(tpch_queries[0])
        for features in extractor.extract_plan(plan).values():
            assert features.get("SOUTTOT") == pytest.approx(
                features.get("COUT") * features.get("SOUTAVG")
            )

    def test_leaf_inputs_are_table_rows(self, planner, tpch_queries):
        extractor = FeatureExtractor(FeatureMode.EXACT)
        for query in tpch_queries[:6]:
            plan = planner.plan(query)
            features = extractor.extract_plan(plan)
            for op in plan.operators():
                if op.op_type.is_leaf:
                    values = features[op.node_id]
                    assert values.get("CIN1") == pytest.approx(op.props["table_rows"])
                    assert values.get("TSIZE") == pytest.approx(op.props["table_rows"])

    def test_root_has_zero_outputusage(self, planner, tpch_queries):
        extractor = FeatureExtractor(FeatureMode.EXACT)
        plan = planner.plan(tpch_queries[0])
        features = extractor.extract_plan(plan)
        assert features[plan.root.node_id].get("OUTPUTUSAGE") == 0.0
        for op in plan.operators():
            if op is not plan.root:
                assert features[op.node_id].get("OUTPUTUSAGE") > 0.0

    def test_estimated_mode_differs_when_cardinality_errors_exist(self, planner, tpch_queries):
        exact = FeatureExtractor(FeatureMode.EXACT)
        estimated = FeatureExtractor(FeatureMode.ESTIMATED)
        differences = 0
        for query in tpch_queries:
            plan = planner.plan(query)
            exact_features = exact.extract_plan(plan)
            estimated_features = estimated.extract_plan(plan)
            for node_id in exact_features:
                if exact_features[node_id].get("COUT") != estimated_features[node_id].get("COUT"):
                    differences += 1
        assert differences > 0

    def test_scan_counts_exact_in_both_modes(self, planner, tpch_queries):
        """Full scans report exact cardinalities even in ESTIMATED mode."""
        estimated = FeatureExtractor(FeatureMode.ESTIMATED)
        for query in tpch_queries[:6]:
            plan = planner.plan(query)
            features = estimated.extract_plan(plan)
            for op in plan.operators():
                if op.op_type in (OperatorType.TABLE_SCAN, OperatorType.INDEX_SCAN):
                    assert features[op.node_id].get("COUT") == pytest.approx(op.true_rows)

    def test_operator_specific_features_present(self, planner, tpch_queries):
        extractor = FeatureExtractor(FeatureMode.EXACT)
        seen_families = set()
        for query in tpch_queries:
            plan = planner.plan(query)
            features = extractor.extract_plan(plan)
            for op in plan.operators():
                values = features[op.node_id]
                seen_families.add(values.family)
                for name in features_for_family(values.family):
                    assert name in values.values or values.get(name) == 0.0
        assert OperatorFamily.SCAN in seen_families
        assert OperatorFamily.HASH_JOIN in seen_families

    def test_vector_ordering_matches_family_features(self, planner, tpch_queries):
        extractor = FeatureExtractor(FeatureMode.EXACT)
        plan = planner.plan(tpch_queries[0])
        features = next(iter(extractor.extract_plan(plan).values()))
        vector = features.vector()
        names = features_for_family(features.family)
        assert len(vector) == len(names)
        assert vector[names.index("COUT")] == features.get("COUT")
