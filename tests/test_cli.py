"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro import __version__
from repro.cli import build_parser, main, train_scaling_estimator
from repro.core.serialization import load_estimator
from repro.experiments.config import get_config
from repro.experiments.registry import EXPERIMENTS


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses_with_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "figure_7", "--profile", "fast", "--output", str(tmp_path)]
        )
        assert args.command == "run"
        assert args.experiment == "figure_7"
        assert args.profile == "fast"
        assert args.output == tmp_path

    def test_estimate_command_parses_with_options(self):
        args = build_parser().parse_args(
            ["estimate", "--queries", "250", "--resource", "io", "--seed", "3"]
        )
        assert args.command == "estimate"
        assert args.queries == 250
        assert args.resource == "io"
        assert args.seed == 3
        assert args.model is None

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.queries == 100
        assert args.resource == "both"

    def test_train_command_parses(self, tmp_path):
        args = build_parser().parse_args(
            ["train", "--out", str(tmp_path / "m.bin"), "--queries", "48"]
        )
        assert args.command == "train"
        assert args.queries == 48

    def test_models_inspect_parses(self, tmp_path):
        args = build_parser().parse_args(["models", "inspect", str(tmp_path / "m.bin")])
        assert args.command == "models"
        assert args.models_command == "inspect"

    def test_models_list_requires_registry(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["models", "list"])
        assert excinfo.value.code == 2
        assert "--registry" in capsys.readouterr().err

    def test_models_diff_parses(self, tmp_path):
        args = build_parser().parse_args(
            ["models", "diff", "--registry", str(tmp_path), "v0001", "v0002"]
        )
        assert args.models_command == "diff"
        assert args.version_a == "v0001"
        assert args.version_b == "v0002"

    def test_models_promote_parses(self, tmp_path):
        args = build_parser().parse_args(
            ["models", "promote", "--registry", str(tmp_path), "v0002"]
        )
        assert args.models_command == "promote"
        assert args.version == "v0002"

    def test_adapt_bench_parses_with_defaults(self):
        args = build_parser().parse_args(["adapt-bench"])
        assert args.command == "adapt-bench"
        assert args.out is None and args.registry is None
        assert args.pre == 96 and args.drift == 192 and args.post == 96
        assert args.trip_threshold == pytest.approx(0.25)

    def test_models_unknown_subcommand_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["models", "bogus"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestMain:
    def test_no_command_returns_2_with_usage(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "subcommand is required" in err

    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_run_cheap_experiment_and_write_output(self, capsys, tmp_path):
        assert main(["run", "figure_7", "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        written = tmp_path / "figure_7.txt"
        assert written.exists()
        assert "Scaling-function selection" in written.read_text()

    def test_unknown_experiment_rejected_with_usage_code(self, capsys):
        """Usage errors return the documented exit code 2 — ``main`` never
        leaks SystemExit to embedding callers."""
        assert main(["run", "table_99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_version_flag_returns_0(self, capsys):
        """``--version`` exits 0 through ``main`` (documented code), not via
        an uncaught SystemExit."""
        assert main(["--version"]) == 0
        assert __version__ in capsys.readouterr().out

    def test_unknown_option_returns_2(self, capsys):
        assert main(["--no-such-flag"]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_models_without_subcommand_returns_2(self, capsys):
        assert main(["models"]) == 2
        err = capsys.readouterr().err
        assert "inspect" in err
        assert "list" in err and "diff" in err and "promote" in err

    def test_train_rejects_unwritable_output_before_training(self, capsys, tmp_path):
        blocker = tmp_path / "not_a_dir"
        blocker.write_text("plain file")
        target = blocker / "model.bin"  # parent is a file -> mkdir fails fast
        assert main(["train", "--out", str(target), "--queries", "8"]) == 2
        assert "cannot write artifact" in capsys.readouterr().err

    def test_models_inspect_rejects_corrupt_file(self, capsys, tmp_path):
        """Corrupt artifacts are a data error (exit 1), not a usage error."""
        bogus = tmp_path / "bogus.bin"
        bogus.write_bytes(b"\x00" * 32)
        assert main(["models", "inspect", str(bogus)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_models_inspect_rejects_pickle_artifacts_without_unpickling(
        self, capsys, tmp_path
    ):
        """Adapter artifacts are refused on magic alone — the embedded pickle
        must never be deserialised by the CLI."""
        from repro.api.adapters import ADAPTER_MAGIC

        path = tmp_path / "adapter.bin"
        # Deliberately not a valid envelope: if the CLI tried to parse or
        # unpickle it, the error text would differ.
        path.write_bytes(ADAPTER_MAGIC + b"\x01\x02\x03")
        assert main(["models", "inspect", str(path)]) == 1
        assert "pickled baseline technique" in capsys.readouterr().err

    def test_estimate_with_missing_artifact_exits_1_with_message(
        self, capsys, tmp_path
    ):
        """A missing model path is a one-line data error, not a traceback."""
        missing = tmp_path / "no_such_model.bin"
        assert main(
            ["estimate", "--model", str(missing), "--profile", "fast"]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1  # one line, newline-terminated
        assert "Traceback" not in err

    def test_estimate_with_corrupt_artifact_exits_1_with_message(
        self, capsys, tmp_path
    ):
        corrupt = tmp_path / "corrupt.bin"
        corrupt.write_bytes(b"\xde\xad\xbe\xef" * 16)
        assert main(
            ["estimate", "--model", str(corrupt), "--profile", "fast"]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1
        assert "Traceback" not in err


class TestTrainServeWorkflow:
    """train --out, then estimate --model: serve without retraining, exactly."""

    # --profile is pinned so the suite is immune to a REPRO_PROFILE env var.
    _TRAIN_ARGS = [
        "--queries", "48", "--iterations", "12", "--train-seed", "7",
        "--profile", "fast",
    ]

    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.bin"
        assert main(["train", "--out", str(path), *self._TRAIN_ARGS]) == 0
        return path

    def test_train_reports_artifact(self, artifact, capsys):
        assert artifact.exists() and artifact.stat().st_size > 0

    def test_models_inspect_reports_size(self, artifact, capsys):
        assert main(["models", "inspect", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "format version: 3" in out
        assert "resources: cpu, io" in out
        assert "model sets:" in out

    def test_models_inspect_reports_flat_layout(self, artifact, capsys):
        assert main(["models", "inspect", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "flat layout:" in out
        assert "compiled ensemble(s)" in out
        assert "int32" in out and "float64" in out

    def test_models_inspect_v2_artifact_notes_compile_on_load(
        self, artifact, tmp_path, capsys
    ):
        from repro.core.serialization import estimator_to_bytes, load_estimator

        legacy = tmp_path / "legacy_v2.bin"
        legacy.write_bytes(estimator_to_bytes(load_estimator(artifact), version=2))
        assert main(["models", "inspect", str(legacy)]) == 0
        out = capsys.readouterr().out
        assert "format version: 2" in out
        assert "compile to" in out and "first predict" in out

    def test_estimate_from_artifact_serves_without_retraining(self, artifact, capsys):
        assert main(
            ["estimate", "--model", str(artifact), "--queries", "12", "--show", "3",
             "--profile", "fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "no retraining" in out
        assert "workload total (cpu):" in out
        assert "workload total (io):" in out

    def test_artifact_matches_in_memory_estimator_exactly(self, artifact):
        """The acceptance property: loaded artifact == freshly trained model."""
        config = get_config("fast")
        in_memory = train_scaling_estimator(
            config, ("cpu", "io"), n_queries=48, seed=7, iterations=12
        )
        loaded = load_estimator(artifact)
        from repro.catalog.statistics import StatisticsCatalog
        from repro.catalog.tpch import build_tpch_catalog
        from repro.optimizer.planner import Planner
        from repro.query.tpch_templates import tpch_template_set

        catalog = build_tpch_catalog(scale_factor=0.1, skew_z=config.tpch_skew)
        planner = Planner(catalog, StatisticsCatalog(catalog))
        queries = tpch_template_set().generate(catalog, 10, seed=23)
        plans = [planner.plan(query) for query in queries]
        for resource in ("cpu", "io"):
            assert np.array_equal(
                loaded.estimate_workload(plans, (resource,)).query_totals(resource),
                in_memory.estimate_workload(plans, (resource,)).query_totals(resource),
            )

    def test_estimate_with_missing_resource_rejected(self, tmp_path, capsys):
        path = tmp_path / "cpu_only.bin"
        assert main(
            ["train", "--out", str(path), "--resource", "cpu", *self._TRAIN_ARGS]
        ) == 0
        capsys.readouterr()
        assert main(
            ["estimate", "--model", str(path), "--resource", "io", "--profile", "fast"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_estimate_both_on_partial_artifact_notes_missing_resource(
        self, tmp_path, capsys
    ):
        path = tmp_path / "cpu_only.bin"
        assert main(
            ["train", "--out", str(path), "--resource", "cpu", *self._TRAIN_ARGS]
        ) == 0
        capsys.readouterr()
        assert main(
            ["estimate", "--model", str(path), "--queries", "6", "--profile", "fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "artifact models cpu only" in out
        assert "workload total (io)" not in out


class TestModelRegistryCLI:
    """models list / diff / promote against a real on-disk registry."""

    @pytest.fixture(scope="class")
    def registry_root(self, tmp_path_factory, trained_estimator):
        from repro.adaptive.registry import ModelRegistry

        root = tmp_path_factory.mktemp("cli_registry")
        registry = ModelRegistry(root)
        registry.register(
            trained_estimator,
            metrics={"cpu": {"holdout_median_relative_error": 0.05}},
            note="seed",
        )
        registry.promote("v0001")
        registry.register(
            trained_estimator,
            metrics={"cpu": {"holdout_median_relative_error": 0.03}},
            parent="v0001",
            note="refit",
        )
        return root

    def test_list_marks_active_version(self, registry_root, capsys):
        assert main(["models", "list", "--registry", str(registry_root)]) == 0
        out = capsys.readouterr().out
        assert "v0001" in out and "v0002" in out
        assert "active" in out and "candidate" in out
        # Exactly one active marker — the promoted seed version.
        assert sum("*" in line for line in out.splitlines()) == 1

    def test_list_missing_registry_exits_1(self, tmp_path, capsys):
        assert main(
            ["models", "list", "--registry", str(tmp_path / "nowhere")]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_diff_reports_metric_delta_and_lineage(self, registry_root, capsys):
        assert main(
            ["models", "diff", "--registry", str(registry_root), "v0001", "v0002"]
        ) == 0
        out = capsys.readouterr().out
        assert "v0001" in out and "v0002" in out
        assert "holdout_median_relative_error" in out
        assert "-0.02" in out  # 0.03 - 0.05, the refit improved
        assert "v0001" in out  # lineage: b's parent

    def test_diff_unknown_version_exits_1(self, registry_root, capsys):
        assert main(
            ["models", "diff", "--registry", str(registry_root), "v0001", "v9999"]
        ) == 1
        assert "v9999" in capsys.readouterr().err

    def test_promote_moves_active_pointer(self, registry_root, capsys):
        from repro.adaptive.registry import ModelRegistry

        assert main(
            ["models", "promote", "--registry", str(registry_root), "v0002"]
        ) == 0
        assert "v0002" in capsys.readouterr().out
        registry = ModelRegistry(registry_root)
        assert registry.active == "v0002"
        assert registry.manifest("v0001").status == "retired"

    def test_promote_unknown_version_exits_1(self, registry_root, capsys):
        assert main(
            ["models", "promote", "--registry", str(registry_root), "v9999"]
        ) == 1
        assert "v9999" in capsys.readouterr().err

    def test_inspect_registry_artifact_prints_manifest(self, registry_root, capsys):
        artifact = registry_root / "v0002" / "model.bin"
        assert main(["models", "inspect", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "registry version: v0002" in out
        assert "registry checksum:" in out
        assert "holdout_median_relative_error" in out
        assert "lineage: refit of v0001" in out
