"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses_with_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "figure_7", "--profile", "fast", "--output", str(tmp_path)]
        )
        assert args.command == "run"
        assert args.experiment == "figure_7"
        assert args.profile == "fast"
        assert args.output == tmp_path

    def test_estimate_command_parses_with_options(self):
        args = build_parser().parse_args(
            ["estimate", "--queries", "250", "--resource", "io", "--seed", "3"]
        )
        assert args.command == "estimate"
        assert args.queries == 250
        assert args.resource == "io"
        assert args.seed == 3

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.queries == 100
        assert args.resource == "both"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_run_cheap_experiment_and_write_output(self, capsys, tmp_path):
        assert main(["run", "figure_7", "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        written = tmp_path / "figure_7.txt"
        assert written.exists()
        assert "Scaling-function selection" in written.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "table_99"])
