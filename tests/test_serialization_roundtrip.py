"""Round-trip persistence of trained estimators (the artifact codec).

The train-once / serve-many contract is that a loaded artifact is
indistinguishable from the estimator that produced it: ``load(save(e))``
must reproduce *bit-identical* ``estimate_workload`` outputs.  These tests
pin that property on TPC-H and TPC-DS plans for both resources, and check
that structurally damaged or version-incompatible artifacts fail loudly
instead of silently serving garbage estimates.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core import ResourceEstimator
from repro.core.serialization import (
    ARTIFACT_MAGIC,
    ARTIFACT_VERSION,
    EstimatorCodecError,
    estimator_from_bytes,
    estimator_to_bytes,
    load_estimator,
    save_estimator,
    serialize_tree,
)
from repro.features.definitions import FeatureMode
from repro.ml.regression_tree import RegressionTree, TreeNode
from repro.workloads.datasets import build_training_data, split_workload
from repro.workloads.tpcds import build_tpcds_workload

RESOURCES = ("cpu", "io")


@pytest.fixture(scope="module")
def tpcds_split():
    workload = build_tpcds_workload(scale_factor=0.1, skew_z=0.8, n_queries=30, seed=19)
    return split_workload(workload, train_fraction=0.75, seed=5)


@pytest.fixture(scope="module")
def tpcds_estimator(tpcds_split, tiny_trainer_config):
    train, _ = tpcds_split
    training_data = build_training_data(train, FeatureMode.EXACT)
    return ResourceEstimator.train(
        training_data, FeatureMode.EXACT, resources=RESOURCES, config=tiny_trainer_config
    )


def _assert_bit_identical(original: ResourceEstimator, restored: ResourceEstimator, plans):
    """Every granularity of estimate_workload must match exactly (== not approx)."""
    for resource in RESOURCES:
        a = original.estimate_workload(plans, (resource,))
        b = restored.estimate_workload(plans, (resource,))
        assert np.array_equal(a.query_totals(resource), b.query_totals(resource))
        for index in range(len(plans)):
            assert a.operators(index, resource) == b.operators(index, resource)
            assert a.pipelines(index, resource) == b.pipelines(index, resource)


class TestRoundTrip:
    def test_tpch_bit_identical(self, trained_estimator, workload_split):
        _, test = workload_split
        restored = estimator_from_bytes(estimator_to_bytes(trained_estimator))
        _assert_bit_identical(trained_estimator, restored, [q.plan for q in test])

    def test_tpcds_bit_identical(self, tpcds_estimator, tpcds_split):
        _, test = tpcds_split
        restored = estimator_from_bytes(estimator_to_bytes(tpcds_estimator))
        _assert_bit_identical(tpcds_estimator, restored, [q.plan for q in test])

    def test_file_round_trip(self, trained_estimator, workload_split, tmp_path):
        _, test = workload_split
        path = tmp_path / "model.bin"
        save_estimator(trained_estimator, path)
        restored = load_estimator(path)
        _assert_bit_identical(trained_estimator, restored, [q.plan for q in test[:4]])

    def test_estimator_save_load_methods(self, trained_estimator, workload_split, tmp_path):
        _, test = workload_split
        path = tmp_path / "model.bin"
        trained_estimator.save(path)
        restored = ResourceEstimator.load(path)
        _assert_bit_identical(trained_estimator, restored, [q.plan for q in test[:4]])

    def test_metadata_preserved(self, trained_estimator):
        restored = estimator_from_bytes(estimator_to_bytes(trained_estimator))
        assert restored.feature_mode is trained_estimator.feature_mode
        assert restored.resources == trained_estimator.resources
        assert set(restored.model_sets) == set(trained_estimator.model_sets)
        for key, model_set in trained_estimator.model_sets.items():
            restored_set = restored.model_sets[key]
            assert restored_set.n_models == model_set.n_models
            assert (
                restored_set.default_model.name == model_set.default_model.name
            )
            for a, b in zip(model_set.models, restored_set.models):
                assert a.feature_names == b.feature_names
                assert a.scaling_feature_names == b.scaling_feature_names
                assert a.training_low_ == b.training_low_
                assert a.training_high_ == b.training_high_
        for resource in RESOURCES:
            assert (
                restored.fallbacks[resource].per_tuple
                == trained_estimator.fallbacks[resource].per_tuple
            )

    def test_trainer_config_round_trips(self, trained_estimator, tiny_trainer_config):
        restored = estimator_from_bytes(estimator_to_bytes(trained_estimator))
        assert restored.trainer_config == tiny_trainer_config

    def test_robustness_metadata_round_trips(self, trained_estimator):
        """Envelopes, family rates and scaling fallbacks survive the codec exactly."""
        restored = estimator_from_bytes(estimator_to_bytes(trained_estimator))
        assert set(restored.envelopes) == set(trained_estimator.envelopes)
        assert trained_estimator.envelopes  # the fixture trains non-trivially
        for family, envelope in trained_estimator.envelopes.items():
            loaded = restored.envelopes[family]
            assert loaded.feature_names == envelope.feature_names
            assert np.array_equal(loaded.low, envelope.low)
            assert np.array_equal(loaded.high, envelope.high)
            assert np.array_equal(loaded.q05, envelope.q05)
            assert np.array_equal(loaded.q50, envelope.q50)
            assert np.array_equal(loaded.q95, envelope.q95)
            assert loaded.n_rows == envelope.n_rows
        assert restored.family_rates == trained_estimator.family_rates
        assert restored.scaling_fallbacks == trained_estimator.scaling_fallbacks
        assert trained_estimator.family_rates and trained_estimator.scaling_fallbacks


class TestVersionCompat:
    """Version-1/2 artifacts (node records) must keep loading and serving."""

    def test_version1_artifact_loads_with_empty_robustness(self, trained_estimator):
        restored = estimator_from_bytes(
            estimator_to_bytes(trained_estimator, version=1)
        )
        assert restored.envelopes == {}
        assert restored.family_rates == {}
        assert restored.scaling_fallbacks == {}

    @pytest.mark.parametrize("version", [1, 2])
    def test_legacy_artifact_serves_identical_estimates(
        self, trained_estimator, workload_split, version
    ):
        _, test = workload_split
        plans = [q.plan for q in test[:4]]
        restored = estimator_from_bytes(
            estimator_to_bytes(trained_estimator, version=version)
        )
        for resource in RESOURCES:
            a = trained_estimator.estimate_workload(plans, (resource,))
            b = restored.estimate_workload(plans, (resource,))
            assert np.array_equal(a.query_totals(resource), b.query_totals(resource))

    @pytest.mark.parametrize("version", [1, 2])
    def test_legacy_file_round_trip(self, trained_estimator, tmp_path, version):
        path = tmp_path / f"v{version}.bin"
        save_estimator(trained_estimator, path, version=version)
        from repro.core.serialization import read_artifact_version

        assert read_artifact_version(path) == version
        restored = load_estimator(path)
        assert set(restored.model_sets) == set(trained_estimator.model_sets)

    def test_unsupported_write_version_rejected(self, trained_estimator):
        with pytest.raises(ValueError, match="version"):
            estimator_to_bytes(trained_estimator, version=ARTIFACT_VERSION + 1)

    def test_current_artifact_reports_version3(self, trained_estimator, tmp_path):
        path = tmp_path / "v3.bin"
        save_estimator(trained_estimator, path)
        from repro.core.serialization import read_artifact_version

        assert read_artifact_version(path) == ARTIFACT_VERSION == 3


class TestStrictLoading:
    @pytest.fixture(scope="class")
    def artifact(self, trained_estimator) -> bytes:
        return estimator_to_bytes(trained_estimator)

    def test_bad_magic_rejected(self, artifact):
        data = b"NOTMAGIC" + artifact[8:]
        with pytest.raises(EstimatorCodecError, match="magic"):
            estimator_from_bytes(data)

    def test_wrong_version_rejected(self, artifact):
        version = struct.pack("<H", ARTIFACT_VERSION + 1)
        data = artifact[:8] + version + artifact[10:]
        with pytest.raises(EstimatorCodecError, match="version"):
            estimator_from_bytes(data)

    def test_truncated_artifact_rejected(self, artifact):
        for cut in (4, 12, len(artifact) // 2, len(artifact) - 1):
            with pytest.raises(EstimatorCodecError):
                estimator_from_bytes(artifact[:cut])

    @pytest.mark.parametrize("position_fraction", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_flipped_byte_anywhere_rejected(self, artifact, position_fraction):
        """The body checksum catches corruption in metadata and weights alike."""
        corrupted = bytearray(artifact)
        position = 14 + int((len(artifact) - 15) * position_fraction)
        corrupted[position] ^= 0xFF
        with pytest.raises(EstimatorCodecError):
            estimator_from_bytes(bytes(corrupted))

    def test_not_an_artifact_file(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(EstimatorCodecError):
            load_estimator(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(EstimatorCodecError):
            load_estimator(tmp_path / "does_not_exist.bin")

    def test_crc_valid_but_malformed_tree_rejected(self, trained_estimator):
        """A structurally broken tree record must fail as a codec error, not
        an IndexError/RecursionError, even when the checksum is intact."""
        import json

        from repro.core.serialization import (
            _FULL_NODE_FORMAT,
            pack_envelope,
            unpack_envelope,
        )

        artifact = estimator_to_bytes(trained_estimator, version=2)
        _, body_bytes = unpack_envelope(artifact, ARTIFACT_MAGIC, 2, "estimator")
        body = bytearray(body_bytes)
        (header_len,) = struct.unpack_from("<I", body, 0)
        header = json.loads(body[4 : 4 + header_len])
        payload_start = 4 + header_len
        # First model's first tree starts after the MART header + ranges.
        record = header["model_sets"][0]["models"][0]
        mart_off = payload_start + record["blob_offset"]
        (_, n_features, _) = struct.unpack_from("<dII", body, mart_off)
        tree_off = mart_off + struct.calcsize("<dII") + 16 * n_features
        (n_nodes,) = struct.unpack_from("<I", body, tree_off)
        feature, _, value = struct.unpack_from(_FULL_NODE_FORMAT, body, tree_off + 4)
        if feature < 0:  # ensure the root is an internal node we can corrupt
            pytest.skip("first tree is a stump")
        # Point the root's right child far past the end of the node list.
        struct.pack_into(
            _FULL_NODE_FORMAT, body, tree_off + 4, feature, n_nodes + 7, value
        )
        rebuilt = pack_envelope(ARTIFACT_MAGIC, 2, bytes(body))
        with pytest.raises(EstimatorCodecError):
            estimator_from_bytes(rebuilt)

    def test_crc_valid_but_malformed_flat_arrays_rejected(self, trained_estimator):
        """Version-3 flat arrays get the same strict structural validation:
        a right-child offset pointing past the tree must fail as a codec
        error even though the checksum is intact."""
        import json

        from repro.core.serialization import pack_envelope, unpack_envelope

        artifact = estimator_to_bytes(trained_estimator)
        _, body_bytes = unpack_envelope(
            artifact, ARTIFACT_MAGIC, ARTIFACT_VERSION, "estimator"
        )
        body = bytearray(body_bytes)
        (header_len,) = struct.unpack_from("<I", body, 0)
        header = json.loads(body[4 : 4 + header_len])
        payload_start = 4 + header_len
        record = header["model_sets"][0]["models"][0]
        mart_off = payload_start + record["blob_offset"]
        (_, n_features, n_trees) = struct.unpack_from("<dII", body, mart_off)
        counts_off = mart_off + struct.calcsize("<dII") + 16 * n_features
        (n_nodes, _) = struct.unpack_from("<II", body, counts_off)
        right_off = (
            counts_off + 8 + 8 * n_trees + 16 * n_nodes + 8 * n_nodes
        )  # roots + thresholds/values + feature/left arrays
        (root_feature,) = struct.unpack_from(
            "<i", body, counts_off + 8 + 8 * n_trees + 16 * n_nodes
        )
        if root_feature < 0:
            pytest.skip("first tree is a stump")
        struct.pack_into("<i", body, right_off, n_nodes + 7)
        rebuilt = pack_envelope(ARTIFACT_MAGIC, ARTIFACT_VERSION, bytes(body))
        with pytest.raises(EstimatorCodecError, match="flat ensemble"):
            estimator_from_bytes(rebuilt)

    def test_magic_is_stable(self, artifact):
        """The on-disk prefix is part of the format contract."""
        assert artifact.startswith(ARTIFACT_MAGIC)
        (version,) = struct.unpack_from("<H", artifact, len(ARTIFACT_MAGIC))
        assert version == ARTIFACT_VERSION


class TestCompactEncodingGuards:
    """serialize_tree must reject trees its 1-byte fields cannot express."""

    @staticmethod
    def _leaf(value: float = 1.0) -> TreeNode:
        return TreeNode(value=value)

    def _tree_with_feature(self, feature: int) -> RegressionTree:
        tree = RegressionTree()
        tree.root = TreeNode(
            value=0.0, feature=feature, threshold=1.0,
            left=self._leaf(), right=self._leaf(),
        )
        return tree

    @pytest.mark.parametrize("feature", [255, 256, 300, 10_000])
    def test_oversized_feature_index_rejected(self, feature):
        """0xFF marks a leaf, so feature indices above 254 must raise, not corrupt."""
        with pytest.raises(ValueError, match="feature index"):
            serialize_tree(self._tree_with_feature(feature))

    def test_feature_254_is_still_encodable(self):
        data = serialize_tree(self._tree_with_feature(254))
        assert len(data) > 0

    def test_oversized_child_offset_rejected(self):
        """A >255-node left subtree pushes the right-child offset past 1 byte."""
        # Left-deep chain: each internal node's left child is the next internal
        # node, so the root's right child sits after the entire left subtree.
        deep = self._leaf()
        for i in range(130):
            deep = TreeNode(value=0.0, feature=1, threshold=float(i),
                            left=deep, right=self._leaf())
        tree = RegressionTree()
        tree.root = TreeNode(value=0.0, feature=2, threshold=0.5,
                             left=deep, right=self._leaf())
        with pytest.raises(ValueError, match="offset"):
            serialize_tree(tree)
