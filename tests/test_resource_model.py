"""Tests for the ground-truth per-operator resource model."""

from __future__ import annotations

import pytest

from repro.engine.hardware import HardwareProfile
from repro.engine.resource_model import ResourceModel
from repro.plan.operators import OperatorType, PlanOperator


@pytest.fixture(scope="module")
def model():
    return ResourceModel(HardwareProfile())


def scan(rows: float, width: float = 100.0) -> PlanOperator:
    pages = rows * width / 8192.0
    return PlanOperator(
        op_type=OperatorType.TABLE_SCAN,
        est_rows=rows,
        true_rows=rows,
        row_width=width,
        props={"table_rows": rows, "pages": pages, "row_width_full": width},
    )


def sort_over(rows: float, width: float = 100.0, columns: int = 1) -> PlanOperator:
    return PlanOperator(
        op_type=OperatorType.SORT,
        children=[scan(rows, width)],
        est_rows=rows,
        true_rows=rows,
        row_width=width,
        props={"n_sort_columns": columns},
    )


class TestScan:
    def test_cpu_grows_with_rows(self, model):
        assert (
            model.operator_resources(scan(1_000_000)).cpu_us
            > model.operator_resources(scan(10_000)).cpu_us
        )

    def test_cpu_grows_superlinearly_with_width(self, model):
        narrow = model.operator_resources(scan(100_000, width=40)).cpu_us
        wide = model.operator_resources(scan(100_000, width=400)).cpu_us
        assert wide > narrow * 2

    def test_io_equals_pages(self, model):
        op = scan(100_000)
        assert model.operator_resources(op).logical_io == pytest.approx(op.props["pages"])

    def test_resources_nonnegative(self, model):
        res = model.operator_resources(scan(0))
        assert res.cpu_us >= 0 and res.logical_io >= 0


class TestSeek:
    def _seek(self, executions: float, table_rows: float = 1_000_000, rows: float = 10.0):
        return PlanOperator(
            op_type=OperatorType.INDEX_SEEK,
            est_rows=rows,
            true_rows=rows,
            row_width=50.0,
            props={
                "table_rows": table_rows,
                "index_depth": 3,
                "index_leaf_pages": table_rows * 50 / 8192.0,
                "executions": executions,
                "covering": True,
            },
        )

    def test_io_grows_with_executions(self, model):
        assert (
            model.operator_resources(self._seek(1_000)).logical_io
            > model.operator_resources(self._seek(1)).logical_io
        )

    def test_noncovering_seek_pays_lookups(self, model):
        covering = self._seek(1, rows=500.0)
        lookup = self._seek(1, rows=500.0)
        lookup.props["covering"] = False
        assert (
            model.operator_resources(lookup).logical_io
            > model.operator_resources(covering).logical_io
        )


class TestSort:
    def test_cpu_superlinear_in_rows(self, model):
        """Doubling the input should more than double the CPU (n log n)."""
        small = model.operator_resources(sort_over(100_000)).cpu_us
        large = model.operator_resources(sort_over(200_000)).cpu_us
        assert large > 2.0 * small

    def test_more_sort_columns_cost_more(self, model):
        assert (
            model.operator_resources(sort_over(100_000, columns=4)).cpu_us
            > model.operator_resources(sort_over(100_000, columns=1)).cpu_us
        )

    def test_in_memory_sort_has_no_io(self, model):
        assert model.operator_resources(sort_over(10_000)).logical_io == 0.0

    def test_spilling_sort_incurs_io(self, model):
        hw = HardwareProfile()
        rows = hw.memory_grant_bytes / 100.0 * 3  # 3x the grant at width 100
        assert model.operator_resources(sort_over(rows)).logical_io > 0.0

    def test_spill_is_discontinuous(self, model):
        """Resource usage jumps at the memory-grant boundary (multi-pass sort)."""
        hw = HardwareProfile()
        just_below = hw.memory_grant_bytes / 100.0 * 0.95
        just_above = hw.memory_grant_bytes / 100.0 * 1.05
        below = model.operator_resources(sort_over(just_below)).logical_io
        above = model.operator_resources(sort_over(just_above)).logical_io
        assert below == 0.0 and above > 0.0


class TestJoinsAndAggregates:
    def _hash_join(self, probe_rows: float, build_rows: float, columns: int = 1) -> PlanOperator:
        return PlanOperator(
            op_type=OperatorType.HASH_JOIN,
            children=[scan(probe_rows, 60.0), scan(build_rows, 60.0)],
            est_rows=probe_rows,
            true_rows=probe_rows,
            row_width=120.0,
            props={"hash_columns": columns, "inner_columns": columns, "outer_columns": columns},
        )

    def test_hash_join_cpu_grows_with_inputs(self, model):
        assert (
            model.operator_resources(self._hash_join(1_000_000, 100_000)).cpu_us
            > model.operator_resources(self._hash_join(100_000, 10_000)).cpu_us
        )

    def test_hash_join_more_columns_cost_more(self, model):
        assert (
            model.operator_resources(self._hash_join(100_000, 10_000, columns=3)).cpu_us
            > model.operator_resources(self._hash_join(100_000, 10_000, columns=1)).cpu_us
        )

    def test_hash_join_spills_when_build_exceeds_grant(self, model):
        hw = HardwareProfile()
        big_build = hw.memory_grant_bytes / 60.0 * 2
        assert model.operator_resources(self._hash_join(10_000, big_build)).logical_io > 0
        assert model.operator_resources(self._hash_join(10_000, 10_000)).logical_io == 0

    def test_nested_loop_cpu_grows_with_outer(self, model):
        def nlj(outer: float) -> PlanOperator:
            return PlanOperator(
                op_type=OperatorType.NESTED_LOOP_JOIN,
                children=[scan(outer, 40.0), scan(outer * 2, 40.0)],
                est_rows=outer * 2,
                true_rows=outer * 2,
                row_width=80.0,
                props={"outer_rows_true": outer, "inner_table_rows": 5_000_000, "index_depth": 3},
            )

        assert model.operator_resources(nlj(50_000)).cpu_us > model.operator_resources(
            nlj(5_000)
        ).cpu_us

    def test_merge_join_linear_in_inputs(self, model):
        def mj(rows: float) -> PlanOperator:
            return PlanOperator(
                op_type=OperatorType.MERGE_JOIN,
                children=[scan(rows, 40.0), scan(rows, 40.0)],
                est_rows=rows,
                true_rows=rows,
                row_width=80.0,
                props={},
            )

        small = model.operator_resources(mj(10_000)).cpu_us
        large = model.operator_resources(mj(100_000)).cpu_us
        assert 5.0 < large / small < 20.0

    def test_hash_aggregate_costs_scale_with_input(self, model):
        def agg(rows: float) -> PlanOperator:
            return PlanOperator(
                op_type=OperatorType.HASH_AGGREGATE,
                children=[scan(rows, 60.0)],
                est_rows=min(rows, 100.0),
                true_rows=min(rows, 100.0),
                row_width=24.0,
                props={"hash_columns": 2, "n_group_columns": 2, "n_aggregates": 3},
            )

        assert model.operator_resources(agg(1_000_000)).cpu_us > model.operator_resources(
            agg(10_000)
        ).cpu_us

    def test_stream_aggregate_cheaper_than_hash_aggregate(self, model):
        child = scan(100_000, 60.0)
        hash_agg = PlanOperator(
            op_type=OperatorType.HASH_AGGREGATE, children=[child], est_rows=10, true_rows=10,
            row_width=24.0, props={"hash_columns": 1, "n_aggregates": 1},
        )
        stream_agg = PlanOperator(
            op_type=OperatorType.STREAM_AGGREGATE, children=[child], est_rows=10, true_rows=10,
            row_width=24.0, props={"n_aggregates": 1},
        )
        assert (
            model.operator_resources(stream_agg).cpu_us
            < model.operator_resources(hash_agg).cpu_us
        )


class TestUnaryOperators:
    def test_filter_cpu_scales_with_complexity(self, model):
        child = scan(200_000, 80.0)

        def filt(complexity: int) -> PlanOperator:
            return PlanOperator(
                op_type=OperatorType.FILTER, children=[child], est_rows=10_000, true_rows=10_000,
                row_width=80.0, props={"predicate_complexity": complexity},
            )

        assert model.operator_resources(filt(5)).cpu_us > model.operator_resources(filt(1)).cpu_us

    def test_filter_has_no_io(self, model):
        child = scan(10_000)
        filt = PlanOperator(
            op_type=OperatorType.FILTER, children=[child], est_rows=100, true_rows=100,
            row_width=100.0, props={"predicate_complexity": 1},
        )
        assert model.operator_resources(filt).logical_io == 0.0

    def test_top_and_compute_scalar_are_cheap(self, model):
        child = scan(100_000)
        top = PlanOperator(op_type=OperatorType.TOP, children=[child], est_rows=10, true_rows=10,
                           row_width=100.0, props={"limit": 10})
        compute = PlanOperator(op_type=OperatorType.COMPUTE_SCALAR, children=[child],
                               est_rows=100_000, true_rows=100_000, row_width=100.0,
                               props={"n_expressions": 2})
        scan_cost = model.operator_resources(child).cpu_us
        assert model.operator_resources(top).cpu_us < scan_cost
        assert model.operator_resources(compute).cpu_us < scan_cost
