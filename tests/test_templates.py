"""Tests for the template framework and the three workload template sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.real import build_real1_catalog, build_real2_catalog
from repro.catalog.tpcds import build_tpcds_catalog
from repro.catalog.tpch import build_tpch_catalog
from repro.query.real_templates import real1_template_set, real2_template_set
from repro.query.spec import QuerySpec, TableRef
from repro.query.templates import QueryTemplate, TemplateSet
from repro.query.tpcds_templates import tpcds_template_set
from repro.query.tpch_templates import tpch_template_set


def _trivial_builder(rng, catalog, name) -> QuerySpec:
    return QuerySpec(name=name, tables=[TableRef("lineitem")])


class TestTemplateFramework:
    def test_empty_template_set_rejected(self):
        with pytest.raises(ValueError):
            TemplateSet("empty", [])

    def test_duplicate_template_names_rejected(self):
        tpl = QueryTemplate("a", _trivial_builder)
        with pytest.raises(ValueError):
            TemplateSet("dup", [tpl, QueryTemplate("a", _trivial_builder)])

    def test_generation_is_deterministic_per_seed(self):
        catalog = build_tpch_catalog(scale_factor=0.01, skew_z=1.0)
        templates = tpch_template_set()
        first = templates.generate(catalog, 12, seed=5)
        second = templates.generate(catalog, 12, seed=5)
        for a, b in zip(first, second):
            assert a.name == b.name
            assert a.template == b.template

    def test_round_robin_covers_all_templates(self):
        catalog = build_tpch_catalog(scale_factor=0.01, skew_z=1.0)
        templates = tpch_template_set()
        queries = templates.generate(catalog, len(templates), seed=0)
        assert {q.template for q in queries} == {t.name for t in templates}

    def test_template_lookup(self):
        templates = tpch_template_set()
        assert templates.template("tpch_q1").name == "tpch_q1"
        with pytest.raises(KeyError):
            templates.template("missing")

    def test_negative_count_rejected(self):
        catalog = build_tpch_catalog(scale_factor=0.01)
        with pytest.raises(ValueError):
            tpch_template_set().generate(catalog, -1)


@pytest.mark.parametrize(
    "template_set_factory, catalog_factory",
    [
        (tpch_template_set, lambda: build_tpch_catalog(scale_factor=0.02, skew_z=1.5)),
        (tpcds_template_set, lambda: build_tpcds_catalog(scale_factor=0.2)),
        (real1_template_set, build_real1_catalog),
        (real2_template_set, build_real2_catalog),
    ],
)
def test_every_template_produces_valid_specs(template_set_factory, catalog_factory):
    """Every template in every workload builds a spec that passes validation
    and references only existing tables/columns."""
    templates = template_set_factory()
    catalog = catalog_factory()
    rng = np.random.default_rng(3)
    for template in templates:
        spec = template.instantiate(rng, catalog, sequence=0)
        spec.validate()
        for ref in spec.tables:
            table = catalog.table(ref.table)
            for column in ref.projected_columns or []:
                assert table.has_column(column), f"{template.name}: {ref.table}.{column}"
            for predicate in ref.predicates:
                assert predicate.column.table == ref.table
                assert table.has_column(predicate.column.column)
        for edge in spec.joins:
            left_ref = spec.table_ref(edge.left)
            right_ref = spec.table_ref(edge.right)
            assert catalog.table(left_ref.table).has_column(edge.left_column)
            assert catalog.table(right_ref.table).has_column(edge.right_column)


def test_real2_queries_have_deep_join_graphs():
    """Real-2 queries should involve roughly a dozen tables (paper: ~12 joins)."""
    templates = real2_template_set()
    catalog = build_real2_catalog()
    rng = np.random.default_rng(0)
    join_counts = [len(t.instantiate(rng, catalog, 0).joins) for t in templates]
    assert max(join_counts) >= 10
    assert sum(join_counts) / len(join_counts) >= 5


def test_parameter_variation_changes_selectivities():
    """Different instantiations of one template draw different parameters."""
    catalog = build_tpch_catalog(scale_factor=0.02, skew_z=1.0)
    templates = tpch_template_set()
    q6 = templates.template("tpch_q6")
    rng = np.random.default_rng(1)
    fractions = set()
    for i in range(5):
        spec = q6.instantiate(rng, catalog, i)
        for predicate in spec.tables[0].predicates:
            fractions.add(round(predicate.domain_fraction, 6))
    assert len(fractions) > 3
