"""Tests for the ResourceEstimator API and model serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serialization import (
    ModelSizeReport,
    combined_model_size_bytes,
    deserialize_tree,
    estimator_size_bytes,
    mart_size_bytes,
    model_set_size_bytes,
    serialize_mart,
    serialize_tree,
)
from repro.features.definitions import OperatorFamily
from repro.ml.mart import MARTConfig, MARTRegressor
from repro.ml.regression_tree import RegressionTree


class TestResourceEstimator:
    def test_families_trained(self, trained_estimator):
        families = trained_estimator.families("cpu")
        assert OperatorFamily.SCAN in families
        assert OperatorFamily.FILTER in families

    def test_operator_estimates_positive(self, trained_estimator, workload_split):
        _, test = workload_split
        for query in test[:5]:
            for op in query.plan.operators():
                assert trained_estimator.estimate_operator(op, resource="cpu") >= 0.0

    def test_plan_estimate_is_sum_of_operators(self, trained_estimator, workload_split):
        _, test = workload_split
        plan = test[0].plan
        per_operator = trained_estimator.estimate_operators(plan, "cpu")
        assert trained_estimator.estimate_plan(plan, "cpu") == pytest.approx(
            sum(per_operator.values())
        )

    def test_pipeline_estimates_sum_to_plan(self, trained_estimator, workload_split):
        _, test = workload_split
        plan = test[0].plan
        pipelines = trained_estimator.estimate_pipelines(plan, "cpu")
        assert sum(pipelines.values()) == pytest.approx(
            trained_estimator.estimate_plan(plan, "cpu"), rel=1e-6
        )
        assert len(pipelines) == len(plan.pipelines())

    def test_query_estimates_are_reasonably_accurate(self, trained_estimator, workload_split):
        """In-distribution test queries should mostly fall within 2x."""
        _, test = workload_split
        ratios = []
        for query in test:
            estimate = trained_estimator.estimate_plan(query.plan, "cpu")
            actual = query.total_cpu_us
            ratios.append(max(estimate / actual, actual / estimate))
        assert float(np.median(ratios)) < 2.0

    def test_io_estimates_available(self, trained_estimator, workload_split):
        _, test = workload_split
        assert trained_estimator.estimate_plan(test[0].plan, "io") >= 0.0

    def test_unknown_resource_rejected(self, trained_estimator, workload_split):
        _, test = workload_split
        with pytest.raises(ValueError):
            trained_estimator.estimate_plan(test[0].plan, "memory")

    def test_model_set_lookup(self, trained_estimator):
        model_set = trained_estimator.model_set(OperatorFamily.SCAN, "cpu")
        assert model_set.n_models >= 1
        with pytest.raises(KeyError):
            trained_estimator.model_set(OperatorFamily.SCAN, "memory")

    def test_fallback_for_unseen_family(self, trained_estimator):
        """Families absent from training still produce finite estimates."""
        estimate = trained_estimator._estimate_features(
            OperatorFamily.MERGE_JOIN, {"COUT": 1000.0, "CIN1": 1000.0}, "cpu"
        )
        assert np.isfinite(estimate) and estimate >= 0.0


class TestSerialization:
    def _tree(self) -> RegressionTree:
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 100, size=(500, 4))
        y = 2.0 * x[:, 0] + np.where(x[:, 1] > 50, 100.0, 0.0)
        return RegressionTree(max_leaves=10).fit(x, y)

    def test_tree_roundtrip_preserves_predictions(self):
        tree = self._tree()
        restored = deserialize_tree(serialize_tree(tree))
        probe = np.random.default_rng(1).uniform(0, 100, size=(50, 4))
        assert np.allclose(tree.predict(probe), restored.predict(probe))

    def test_ten_leaf_tree_fits_in_130_bytes(self):
        """The paper's memory argument: a 10-leaf tree needs <= ~130 bytes."""
        tree = self._tree()
        assert tree.n_leaves <= 10
        assert len(serialize_tree(tree)) <= 130

    def test_mart_size_scales_with_trees(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 10, size=(200, 3))
        y = x[:, 0] * 5.0 + rng.normal(0, 0.1, 200)
        small = MARTRegressor(MARTConfig(n_iterations=10)).fit(x, y)
        large = MARTRegressor(MARTConfig(n_iterations=40)).fit(x, y)
        assert mart_size_bytes(large) > mart_size_bytes(small)
        assert len(serialize_mart(small)) == mart_size_bytes(small)

    def test_thousand_tree_model_under_130kb(self):
        """Projection of the paper's bound: 1000 trees stay under ~130 KB."""
        tree_bytes = len(serialize_tree(self._tree()))
        assert tree_bytes * 1000 <= 130 * 1024

    def test_unfitted_tree_rejected(self):
        with pytest.raises(ValueError):
            serialize_tree(RegressionTree())

    def test_estimator_size_report(self, trained_estimator):
        report = ModelSizeReport.for_estimator(trained_estimator)
        assert report.n_model_sets == len(trained_estimator.model_sets)
        assert report.n_models >= report.n_model_sets
        assert report.total_bytes == estimator_size_bytes(trained_estimator)
        assert 0 < report.largest_single_model_bytes <= report.total_bytes
        # "A few megabytes" for the whole collection in the paper; our
        # reduced boosting budget keeps it well below that.
        assert report.total_bytes < 8 * 1024 * 1024

    def test_model_set_size_accounting(self, trained_estimator):
        model_set = trained_estimator.model_set(OperatorFamily.SCAN, "cpu")
        assert model_set_size_bytes(model_set) == sum(
            combined_model_size_bytes(m) for m in model_set.models
        )
