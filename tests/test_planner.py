"""Tests for the planner: access paths, join ordering/algorithms, plan shape."""

from __future__ import annotations

import pytest

from repro.plan.operators import OperatorType
from repro.query.builders import conjunction, range_predicate
from repro.query.spec import AggregateSpec, JoinEdge, OrderBySpec, QuerySpec, TableRef

import numpy as np


class TestPlanShape:
    def test_all_plans_have_one_leaf_per_table(self, planner, tpch_queries):
        for query in tpch_queries:
            plan = planner.plan(query)
            leaves = [op for op in plan.operators() if op.op_type.is_leaf]
            assert len(leaves) == len(query.tables)

    def test_all_plans_have_one_join_per_edge_at_least(self, planner, tpch_queries):
        for query in tpch_queries:
            plan = planner.plan(query)
            joins = [op for op in plan.operators() if op.op_type.is_join]
            assert len(joins) == len(query.tables) - 1

    def test_cardinalities_are_annotated(self, planner, tpch_queries):
        for query in tpch_queries:
            plan = planner.plan(query)
            for op in plan.operators():
                assert op.est_rows >= 0
                assert op.true_rows >= 0
                assert op.row_width > 0

    def test_sort_present_when_order_by(self, planner, tpch_queries):
        for query in tpch_queries:
            plan = planner.plan(query)
            has_sort = any(op.op_type is OperatorType.SORT for op in plan.operators())
            if query.order_by is not None and query.order_by.columns:
                assert has_sort

    def test_top_present_when_limit(self, planner, tpch_queries):
        for query in tpch_queries:
            plan = planner.plan(query)
            has_top = any(op.op_type is OperatorType.TOP for op in plan.operators())
            assert has_top == (query.limit is not None)

    def test_aggregate_present_when_grouping(self, planner, tpch_queries):
        for query in tpch_queries:
            plan = planner.plan(query)
            has_agg = any(op.op_type.is_aggregate for op in plan.operators())
            assert has_agg == (query.aggregate is not None)

    def test_optimizer_costs_annotated(self, planner, tpch_queries):
        for query in tpch_queries:
            plan = planner.plan(query)
            assert plan.total_estimated_cost > 0

    def test_describe_renders(self, planner, tpch_queries):
        plan = planner.plan(tpch_queries[0])
        text = plan.describe()
        assert "Plan for" in text and "rows" in text


class TestAccessPathChoice:
    def test_selective_predicate_uses_index_seek(self, planner):
        query = QuerySpec(
            name="seek",
            tables=[
                TableRef(
                    "orders",
                    predicates=conjunction(
                        range_predicate(
                            np.random.default_rng(0), "orders", "o_orderkey", 0.001, 0.002
                        )
                    ),
                    projected_columns=["o_orderkey", "o_totalprice"],
                )
            ],
        )
        plan = planner.plan(query)
        assert any(op.op_type is OperatorType.INDEX_SEEK for op in plan.operators())

    def test_unselective_predicate_uses_scan(self, planner):
        query = QuerySpec(
            name="scan",
            tables=[
                TableRef(
                    "orders",
                    predicates=conjunction(
                        range_predicate(
                            np.random.default_rng(0), "orders", "o_orderkey", 0.8, 0.9
                        )
                    ),
                )
            ],
        )
        plan = planner.plan(query)
        types = {op.op_type for op in plan.operators()}
        assert OperatorType.INDEX_SEEK not in types
        assert types & {OperatorType.TABLE_SCAN, OperatorType.INDEX_SCAN}
        # The filter must be applied explicitly.
        assert OperatorType.FILTER in types

    def test_filter_reduces_cardinality(self, planner):
        query = QuerySpec(
            name="filter",
            tables=[
                TableRef(
                    "lineitem",
                    predicates=conjunction(
                        range_predicate(
                            np.random.default_rng(1), "lineitem", "l_quantity", 0.3, 0.4
                        )
                    ),
                )
            ],
        )
        plan = planner.plan(query)
        filters = [op for op in plan.operators() if op.op_type is OperatorType.FILTER]
        assert filters
        for filter_op in filters:
            assert filter_op.true_rows <= filter_op.children[0].true_rows


class TestJoinAlgorithms:
    def _join_query(self, predicate_fraction: float) -> QuerySpec:
        rng = np.random.default_rng(2)
        return QuerySpec(
            name="join",
            tables=[
                TableRef(
                    "orders",
                    predicates=conjunction(
                        range_predicate(rng, "orders", "o_orderkey", predicate_fraction,
                                        predicate_fraction + 0.001)
                    ),
                    projected_columns=["o_orderkey", "o_totalprice"],
                ),
                TableRef("lineitem", projected_columns=["l_orderkey", "l_quantity"]),
            ],
            joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        )

    def test_small_outer_uses_nested_loop(self, planner):
        plan = planner.plan(self._join_query(0.0005))
        assert any(op.op_type is OperatorType.NESTED_LOOP_JOIN for op in plan.operators())

    def test_large_inputs_use_hash_join(self, planner, tpch_catalog):
        query = QuerySpec(
            name="bigjoin",
            tables=[
                TableRef("orders", projected_columns=["o_orderkey", "o_custkey"]),
                TableRef("lineitem", projected_columns=["l_orderkey", "l_quantity"]),
            ],
            joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        )
        plan = planner.plan(query)
        join_ops = [op for op in plan.operators() if op.op_type.is_join]
        assert join_ops
        # With both unfiltered inputs larger than the nested-loop outer
        # threshold the planner must not pick an index nested loop join.
        assert all(op.op_type is not OperatorType.NESTED_LOOP_JOIN for op in join_ops)

    def test_hash_join_builds_on_smaller_input(self, planner, tpch_queries):
        for query in tpch_queries:
            plan = planner.plan(query)
            for op in plan.operators():
                if op.op_type is OperatorType.HASH_JOIN:
                    probe, build = op.children
                    assert build.est_rows <= probe.est_rows * 1.001

    def test_nested_loop_annotates_inner_table(self, planner):
        plan = planner.plan(self._join_query(0.0005))
        for op in plan.operators():
            if op.op_type is OperatorType.NESTED_LOOP_JOIN:
                assert op.props["inner_table_rows"] > 0
                assert op.props["index_depth"] >= 1


class TestAggregationAndGrouping:
    def test_scalar_aggregate_uses_stream_aggregate(self, planner):
        query = QuerySpec(
            name="scalar",
            tables=[TableRef("lineitem", projected_columns=["l_quantity"])],
            aggregate=AggregateSpec(group_by={}, n_aggregates=1),
        )
        plan = planner.plan(query)
        assert any(op.op_type is OperatorType.STREAM_AGGREGATE for op in plan.operators())
        assert plan.root.true_rows == 1

    def test_grouped_aggregate_uses_hash_aggregate(self, planner):
        query = QuerySpec(
            name="grouped",
            tables=[TableRef("lineitem", projected_columns=["l_returnflag", "l_quantity"])],
            aggregate=AggregateSpec(group_by={"lineitem": ["l_returnflag"]}, n_aggregates=2),
        )
        plan = planner.plan(query)
        agg = [op for op in plan.operators() if op.op_type is OperatorType.HASH_AGGREGATE]
        assert agg
        assert agg[0].true_rows <= agg[0].children[0].true_rows

    def test_group_count_bounded_by_domain(self, planner):
        query = QuerySpec(
            name="grouped2",
            tables=[TableRef("lineitem", projected_columns=["l_returnflag", "l_quantity"])],
            aggregate=AggregateSpec(group_by={"lineitem": ["l_returnflag"]}, n_aggregates=1),
            order_by=OrderBySpec([("lineitem", "l_returnflag")]),
        )
        plan = planner.plan(query)
        for op in plan.operators():
            if op.op_type is OperatorType.HASH_AGGREGATE:
                assert op.true_rows <= 3 + 1e-6  # l_returnflag has 3 distinct values
