"""Tests for optimizer-visible column statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Column, ColumnType, Table
from repro.catalog.statistics import ColumnStatistics, StatisticsCatalog
from repro.catalog.tpch import build_tpch_catalog
from repro.data.distributions import ZipfDistribution


def skewed_table(rows: int = 100_000, ndv: int = 1_000, z: float = 1.5) -> Table:
    return Table(
        "t",
        [Column("k", ColumnType.INTEGER, ndv=ndv, distribution=ZipfDistribution(ndv, z))],
        row_count=rows,
    )


class TestColumnStatistics:
    def test_bucket_fractions_sum_to_one(self):
        table = skewed_table()
        stats = ColumnStatistics.from_column(table, table.column("k"))
        assert stats.bucket_fractions.sum() == pytest.approx(1.0)

    def test_eq_selectivity_is_one_over_ndv(self):
        table = skewed_table(ndv=500)
        stats = ColumnStatistics.from_column(table, table.column("k"))
        assert stats.estimated_eq_selectivity() == pytest.approx(1.0 / 500)

    def test_ndv_error_damps_distinct_count(self):
        table = skewed_table(ndv=1_000)
        stats = ColumnStatistics.from_column(table, table.column("k"), ndv_error=0.5)
        assert stats.estimated_ndv == 500

    def test_range_estimate_close_to_truth_under_skew(self):
        """Histogram estimates track the skewed truth within bucket resolution."""
        table = skewed_table(z=1.0)
        column = table.column("k")
        stats = ColumnStatistics.from_column(table, column, n_buckets=32)
        truth = column.distribution.range_selectivity(0.25, anchor="head")
        estimate = stats.estimated_range_selectivity(0.25, anchor="head")
        assert estimate == pytest.approx(truth, rel=0.2)

    def test_range_estimate_loses_intra_bucket_skew(self):
        """Within a single bucket the estimate falls back to interpolation."""
        table = skewed_table(z=2.0)
        column = table.column("k")
        stats = ColumnStatistics.from_column(table, column, n_buckets=8)
        tiny = 0.01  # well inside the first bucket
        truth = column.distribution.range_selectivity(tiny, anchor="head")
        estimate = stats.estimated_range_selectivity(tiny, anchor="head")
        assert estimate < truth  # skew concentrated at the head is underestimated

    def test_anchor_validation(self):
        table = skewed_table()
        stats = ColumnStatistics.from_column(table, table.column("k"))
        with pytest.raises(ValueError):
            stats.estimated_range_selectivity(0.5, anchor="middle")


@settings(max_examples=30, deadline=None)
@given(fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_estimated_range_selectivity_is_probability(fraction):
    table = skewed_table()
    stats = ColumnStatistics.from_column(table, table.column("k"))
    for anchor in ("head", "tail"):
        value = stats.estimated_range_selectivity(fraction, anchor=anchor)
        assert 0.0 <= value <= 1.0


class TestStatisticsCatalog:
    def test_lazily_builds_and_caches(self):
        catalog = build_tpch_catalog(scale_factor=0.01)
        stats = StatisticsCatalog(catalog)
        first = stats.column_statistics("lineitem", "l_shipdate")
        second = stats.column_statistics("lineitem", "l_shipdate")
        assert first is second

    def test_invalidate_clears_cache(self):
        catalog = build_tpch_catalog(scale_factor=0.01)
        stats = StatisticsCatalog(catalog)
        first = stats.column_statistics("orders", "o_orderdate")
        stats.invalidate()
        second = stats.column_statistics("orders", "o_orderdate")
        assert first is not second
