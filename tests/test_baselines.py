"""Tests for the competing estimation techniques (Section 7 baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AkdereOperatorBaseline,
    LinearBaseline,
    MARTBaseline,
    OptimizerBaseline,
    RegTreeBaseline,
    ScalingTechnique,
    SVMBaseline,
    standard_techniques,
)
from repro.core.trainer import TrainerConfig
from repro.features.definitions import FeatureMode
from repro.ml.mart import MARTConfig
from repro.ml.metrics import ratio_error
from repro.ml.transform_regression import TransformConfig


TINY_MART = MARTConfig(n_iterations=20, max_leaves=8, learning_rate=0.2, subsample=1.0)


def _technique_instances():
    return [
        OptimizerBaseline(),
        AkdereOperatorBaseline(),
        LinearBaseline(),
        MARTBaseline(mart_config=TINY_MART),
        SVMBaseline(kernel="poly"),
        RegTreeBaseline(TransformConfig(n_iterations=15)),
        ScalingTechnique(trainer_config=TrainerConfig(mart=TINY_MART, max_pair_models=0)),
    ]


@pytest.fixture(scope="module")
def fitted_techniques(workload_split):
    train, _ = workload_split
    fitted = []
    for technique in _technique_instances():
        fitted.append(technique.fit(train, "cpu", FeatureMode.EXACT))
    return fitted


class TestCommonInterface:
    def test_every_technique_produces_finite_positive_estimates(
        self, fitted_techniques, workload_split
    ):
        _, test = workload_split
        for technique in fitted_techniques:
            estimates = technique.predict_queries(test)
            assert estimates.shape == (len(test),)
            assert np.isfinite(estimates).all()
            assert (estimates >= 0.0).all()

    def test_statistical_techniques_beat_random_guessing(
        self, fitted_techniques, workload_split
    ):
        """Every learned technique should land within 10x for most queries."""
        _, test = workload_split
        actuals = np.array([q.total_cpu_us for q in test])
        for technique in fitted_techniques:
            if technique.name == "OPT":
                continue
            estimates = technique.predict_queries(test)
            ratios = ratio_error(estimates, actuals)
            assert float(np.median(ratios)) < 10.0, technique.name

    def test_standard_lineup_contains_the_papers_techniques(self):
        names = {t.name for t in standard_techniques()}
        assert {"OPT", "[8]", "LINEAR", "MART", "REGTREE", "SCALING"} <= names
        assert any(name.startswith("SVM") for name in names)


class TestOptimizerBaseline:
    def test_adjustment_factors_fitted_per_family(self, workload_split):
        train, _ = workload_split
        opt = OptimizerBaseline().fit(train, "cpu", FeatureMode.ESTIMATED)
        assert opt.factors_
        assert all(factor >= 0.0 for factor in opt.factors_.values())
        assert opt.global_factor_ > 0.0

    def test_io_factors_differ_from_cpu_factors(self, workload_split):
        train, _ = workload_split
        cpu = OptimizerBaseline().fit(train, "cpu", FeatureMode.ESTIMATED)
        io = OptimizerBaseline().fit(train, "io", FeatureMode.ESTIMATED)
        assert cpu.factors_ != io.factors_


class TestAkdereBaseline:
    def test_estimate_is_cumulative_root_value(self, workload_split):
        train, test = workload_split
        model = AkdereOperatorBaseline().fit(train, "cpu", FeatureMode.EXACT)
        query = test[0]
        assert model.predict_query(query) > 0.0

    def test_cumulative_actuals_are_monotone(self, workload_split):
        train, _ = workload_split
        model = AkdereOperatorBaseline()
        model.resource = "cpu"
        query = train[0]
        cumulative = model._cumulative_actuals(query)
        children = model._children_of(query)
        for node_id, child_ids in children.items():
            for child_id in child_ids:
                assert cumulative[node_id] >= cumulative[child_id] - 1e-9

    def test_root_cumulative_equals_query_total(self, workload_split):
        train, _ = workload_split
        model = AkdereOperatorBaseline()
        model.resource = "cpu"
        query = train[0]
        cumulative = model._cumulative_actuals(query)
        assert cumulative[query.plan.root.node_id] == pytest.approx(query.total_cpu_us)


class TestScalingTechnique:
    def test_estimator_property_exposes_pipelines(self, workload_split):
        train, test = workload_split
        technique = ScalingTechnique(
            trainer_config=TrainerConfig(mart=TINY_MART, max_pair_models=0)
        ).fit(train, "cpu", FeatureMode.EXACT)
        pipelines = technique.estimator.estimate_pipelines(test[0].plan, "cpu")
        assert pipelines

    def test_unfitted_raises(self):
        technique = ScalingTechnique()
        with pytest.raises(RuntimeError):
            technique.predict_query(None)  # type: ignore[arg-type]
        with pytest.raises(RuntimeError):
            _ = technique.estimator

    def test_scaling_generalises_better_than_mart_across_scales(self):
        """Lightweight version of the paper's headline claim (Figure 3 vs 6,
        Table 5): train on a small scale factor, test on a 6x larger one —
        SCALING must not degrade as badly as plain MART."""
        from repro.workloads.tpch import build_tpch_workload

        train_wl = build_tpch_workload(scale_factor=0.05, skew_z=1.0, n_queries=54, seed=21)
        test_wl = build_tpch_workload(scale_factor=0.3, skew_z=1.0, n_queries=18, seed=22)
        scaling = ScalingTechnique(
            trainer_config=TrainerConfig(mart=TINY_MART, max_pair_models=0)
        ).fit(train_wl.queries, "cpu", FeatureMode.EXACT)
        mart = MARTBaseline(mart_config=TINY_MART).fit(train_wl.queries, "cpu", FeatureMode.EXACT)

        actuals = np.array([q.total_cpu_us for q in test_wl.queries])
        scaling_ratio = np.median(ratio_error(scaling.predict_queries(test_wl.queries), actuals))
        mart_ratio = np.median(ratio_error(mart.predict_queries(test_wl.queries), actuals))
        assert scaling_ratio < mart_ratio

    def test_mart_systematically_underestimates_out_of_range(self):
        """Plain MART's estimates on much larger data stay near the training
        maximum (the Figure 3 failure mode)."""
        from repro.workloads.tpch import build_tpch_workload

        train_wl = build_tpch_workload(scale_factor=0.05, skew_z=1.0, n_queries=54, seed=31)
        test_wl = build_tpch_workload(scale_factor=0.4, skew_z=1.0, n_queries=18, seed=32)
        mart = MARTBaseline(mart_config=TINY_MART).fit(train_wl.queries, "cpu", FeatureMode.EXACT)
        estimates = mart.predict_queries(test_wl.queries)
        actuals = np.array([q.total_cpu_us for q in test_wl.queries])
        # Underestimation on the expensive half of the test queries.
        expensive = actuals >= np.median(actuals)
        assert float(np.mean(estimates[expensive] < actuals[expensive])) > 0.7
