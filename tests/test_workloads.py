"""Tests for workload running, datasets and splits."""

from __future__ import annotations

import pytest

from repro.features.definitions import FeatureMode, OperatorFamily
from repro.workloads.datasets import build_training_data, filter_by_template, split_workload
from repro.workloads.runner import ObservedWorkload


class TestWorkloadRunner:
    def test_workload_has_requested_queries(self, small_workload):
        assert len(small_workload) == 72

    def test_every_query_has_operator_observations(self, small_workload):
        for query in small_workload:
            assert len(query.operators) == query.plan.operator_count()
            assert query.total_cpu_us > 0.0
            assert query.total_logical_io > 0.0
            assert query.optimizer_cost > 0.0

    def test_query_totals_match_operator_sums(self, small_workload):
        for query in small_workload.queries[:10]:
            assert query.total_cpu_us == pytest.approx(
                sum(op.actual_cpu_us for op in query.operators)
            )

    def test_both_feature_modes_recorded(self, small_workload):
        op = small_workload.queries[0].operators[0]
        assert op.features(FeatureMode.EXACT) is op.exact_features
        assert op.features(FeatureMode.ESTIMATED) is op.estimated_features

    def test_actual_resource_accessor(self, small_workload):
        op = small_workload.queries[0].operators[0]
        assert op.actual("cpu") == op.actual_cpu_us
        assert op.actual("io") == op.actual_logical_io
        with pytest.raises(ValueError):
            op.actual("memory")

    def test_templates_enumeration(self, small_workload):
        templates = small_workload.templates()
        assert "tpch_q1" in templates
        assert len(templates) == 18

    def test_run_single_query(self, workload_runner, tpch_queries):
        observed = workload_runner.run_query(tpch_queries[0])
        assert observed.query is tpch_queries[0]
        assert observed.total_cpu_us > 0


class TestSplitsAndDatasets:
    def test_split_is_disjoint_and_complete(self, small_workload):
        train, test = split_workload(small_workload, 0.8, seed=1)
        train_names = {q.query.name for q in train}
        test_names = {q.query.name for q in test}
        assert not (train_names & test_names)
        assert len(train) + len(test) == len(small_workload)

    def test_split_fraction_respected(self, small_workload):
        train, test = split_workload(small_workload, 0.75, seed=2)
        assert len(train) == pytest.approx(0.75 * len(small_workload), abs=1)

    def test_split_deterministic_per_seed(self, small_workload):
        first = split_workload(small_workload, 0.8, seed=3)[0]
        second = split_workload(small_workload, 0.8, seed=3)[0]
        assert [q.query.name for q in first] == [q.query.name for q in second]

    def test_invalid_fraction_rejected(self, small_workload):
        with pytest.raises(ValueError):
            split_workload(small_workload, 1.5)

    def test_training_data_grouped_by_family(self, workload_split):
        train, _ = workload_split
        data = build_training_data(train, FeatureMode.EXACT)
        assert OperatorFamily.SCAN in data
        total_rows = sum(d.n_rows for d in data.values())
        assert total_rows == sum(len(q.operators) for q in train)
        scan_data = data[OperatorFamily.SCAN]
        assert len(scan_data.target_array("cpu")) == scan_data.n_rows
        assert len(scan_data.target_array("io")) == scan_data.n_rows

    def test_filter_by_template(self, small_workload):
        q1_only = filter_by_template(small_workload, ["tpch_q1"])
        assert q1_only
        assert all(q.template == "tpch_q1" for q in q1_only)

    def test_extend_merges_workloads(self, small_workload):
        merged = ObservedWorkload(name="merged", catalog=small_workload.catalog)
        merged.extend(small_workload)
        assert len(merged) == len(small_workload)
        assert len(merged.operators()) == len(small_workload.operators())
