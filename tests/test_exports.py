"""Lint-style meta-test: public package exports stay aligned.

Three serving-adjacent packages (:mod:`repro.serving`, :mod:`repro.robustness`,
:mod:`repro.adaptive`) resolve their exports lazily through a PEP 562
``__getattr__`` over an ``_EXPORTS`` name->module table, while
:mod:`repro.api` imports eagerly.  Either way, the contract is the same:

* every name in ``__all__`` actually resolves (no stale table entries);
* ``__all__`` carries no duplicates and matches the lazy table exactly;
* ``dir(package)`` advertises every export (tooling completeness);
* a bogus attribute still raises :class:`AttributeError` (PEP 562
  ``__getattr__`` must not swallow the miss).
"""

from __future__ import annotations

import importlib

import pytest

#: Packages with a public export surface, lazy (PEP 562) or eager.
_PACKAGES = ["repro.api", "repro.serving", "repro.robustness", "repro.adaptive"]
_LAZY_PACKAGES = ["repro.serving", "repro.robustness", "repro.adaptive"]


@pytest.fixture(params=_PACKAGES)
def package(request):
    return importlib.import_module(request.param)


def test_every_export_resolves(package):
    for name in package.__all__:
        assert getattr(package, name) is not None, f"{package.__name__}.{name}"


def test_all_has_no_duplicates(package):
    assert len(package.__all__) == len(set(package.__all__))


def test_dir_advertises_every_export(package):
    missing = set(package.__all__) - set(dir(package))
    assert not missing, f"{package.__name__}: dir() hides {sorted(missing)}"


def test_unknown_attribute_raises(package):
    with pytest.raises(AttributeError):
        package.no_such_export_anywhere


@pytest.mark.parametrize("name", _LAZY_PACKAGES)
def test_lazy_table_matches_all(name):
    package = importlib.import_module(name)
    assert sorted(package.__all__) == sorted(package._EXPORTS)


@pytest.mark.parametrize("name", _LAZY_PACKAGES)
def test_lazy_table_points_at_the_real_provider(name):
    """Each table entry names a module that actually defines the export."""
    package = importlib.import_module(name)
    for export, module_name in package._EXPORTS.items():
        if not module_name.startswith("repro."):
            module_name = f"{name}.{module_name}"
        module = importlib.import_module(module_name)
        assert hasattr(module, export), f"{module_name} does not define {export}"
        assert export in getattr(module, "__all__", [export]), (
            f"{module_name}.{export} is not public in its provider"
        )


def test_serving_reexports_service_stats_types():
    """Satellite contract: StatsSnapshot/ServiceStats reachable via serving."""
    import repro.api.service as service
    import repro.serving as serving

    assert serving.StatsSnapshot is service.StatsSnapshot
    assert serving.ServiceStats is service.ServiceStats
