"""Unit and property tests for the value-distribution substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.distributions import (
    NormalDistribution,
    UniformDistribution,
    ZipfDistribution,
    make_distribution,
)


class TestUniformDistribution:
    def test_eq_selectivity_is_one_over_ndv(self):
        dist = UniformDistribution(100)
        assert dist.eq_selectivity(0) == pytest.approx(0.01)
        assert dist.eq_selectivity(99) == pytest.approx(0.01)

    def test_range_selectivity_equals_fraction(self):
        dist = UniformDistribution(1000)
        assert dist.range_selectivity(0.25) == pytest.approx(0.25)
        assert dist.range_selectivity(0.25, anchor="tail") == pytest.approx(0.25)

    def test_invalid_n_values(self):
        with pytest.raises(ValueError):
            UniformDistribution(0)


class TestZipfDistribution:
    def test_frequencies_sum_to_one(self):
        dist = ZipfDistribution(500, z=1.0)
        total = sum(dist.eq_selectivity(rank) for rank in range(500))
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_frequencies_decrease_with_rank(self):
        dist = ZipfDistribution(200, z=1.5)
        freqs = [dist.eq_selectivity(rank) for rank in range(200)]
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))

    def test_zero_exponent_is_uniform(self):
        dist = ZipfDistribution(50, z=0.0)
        assert dist.eq_selectivity(0) == pytest.approx(1.0 / 50)
        assert dist.eq_selectivity(49) == pytest.approx(1.0 / 50)

    def test_head_range_exceeds_uniform_under_skew(self):
        dist = ZipfDistribution(1000, z=1.0)
        assert dist.range_selectivity(0.1, anchor="head") > 0.1

    def test_tail_range_below_uniform_under_skew(self):
        dist = ZipfDistribution(1000, z=1.0)
        assert dist.range_selectivity(0.1, anchor="tail") < 0.1

    def test_full_range_is_one(self):
        dist = ZipfDistribution(1000, z=2.0)
        assert dist.range_selectivity(1.0) == pytest.approx(1.0, rel=1e-6)

    def test_analytic_approximation_large_domain(self):
        """The analytic path (large NDV) roughly matches the exact one."""
        exact = ZipfDistribution(100_000, z=1.0)
        approx = ZipfDistribution(1_000_000, z=1.0)
        # Head mass of the top 1% of values should be in the same ballpark.
        assert approx.range_selectivity(0.01) == pytest.approx(
            exact.range_selectivity(0.01), rel=0.35
        )

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfDistribution(10, z=-1.0)

    def test_sample_rank_within_domain(self):
        dist = ZipfDistribution(50, z=1.0)
        rng = np.random.default_rng(1)
        ranks = [dist.sample_rank(rng) for _ in range(200)]
        assert all(0 <= rank < 50 for rank in ranks)
        # Skewed sampling should hit the head more often than the tail.
        assert ranks.count(0) > ranks.count(49)

    def test_skew_coefficient(self):
        assert ZipfDistribution(10, z=1.7).skew_coefficient() == pytest.approx(1.7)


class TestNormalDistribution:
    def test_frequencies_sum_to_one(self):
        dist = NormalDistribution(300, relative_std=0.3)
        total = sum(dist.eq_selectivity(rank) for rank in range(300))
        assert total == pytest.approx(1.0, rel=1e-9)

    def test_head_heavier_than_tail(self):
        dist = NormalDistribution(300, relative_std=0.2)
        assert dist.range_selectivity(0.2, anchor="head") > dist.range_selectivity(
            0.2, anchor="tail"
        )

    def test_invalid_std(self):
        with pytest.raises(ValueError):
            NormalDistribution(10, relative_std=0.0)


class TestFactory:
    def test_make_uniform(self):
        assert isinstance(make_distribution("uniform", 10), UniformDistribution)

    def test_make_zipf(self):
        assert isinstance(make_distribution("zipf", 10, 1.0), ZipfDistribution)

    def test_make_zipf_zero_param_degenerates_to_uniform(self):
        assert isinstance(make_distribution("zipf", 10, 0.0), UniformDistribution)

    def test_make_normal(self):
        assert isinstance(make_distribution("normal", 10, 0.5), NormalDistribution)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_distribution("pareto", 10)


@settings(max_examples=40, deadline=None)
@given(
    n_values=st.integers(min_value=2, max_value=5_000),
    z=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_range_selectivity_is_a_probability(n_values, z, fraction):
    """Property: any range selectivity is within [0, 1] for any skew."""
    dist = ZipfDistribution(n_values, z)
    for anchor in ("head", "tail"):
        selectivity = dist.range_selectivity(fraction, anchor=anchor)
        assert 0.0 <= selectivity <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    n_values=st.integers(min_value=2, max_value=2_000),
    z=st.floats(min_value=0.0, max_value=2.5, allow_nan=False),
)
def test_head_range_monotonic_in_fraction(n_values, z):
    """Property: covering more of the domain never selects fewer rows."""
    dist = ZipfDistribution(n_values, z)
    fractions = np.linspace(0.0, 1.0, 9)
    values = [dist.range_selectivity(f, anchor="head") for f in fractions]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
