"""Bit-identical parity: compiled flat-array kernel vs per-tree node walks.

The flat kernel (:mod:`repro.ml.flat_ensemble`) must reproduce the
sequential per-tree fold *bitwise* — same routing on NaN/inf features, same
floating-point accumulation order — across real workloads (TPC-H and the
cross-schema TPC-DS set) and hand-built edge-case trees, and survive every
artifact round trip (v1/v2 node records recompile, v3 loads the arrays
directly, optionally memory-mapped).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EstimationService
from repro.core.serialization import (
    estimator_from_bytes,
    estimator_to_bytes,
    load_estimator,
    save_estimator,
)
from repro.ml.flat_ensemble import FlatForest, compile_mart, compile_transform
from repro.ml.mart import MARTConfig, MARTRegressor
from repro.ml.regression_tree import RegressionTree, TreeNode
from repro.ml.transform_regression import TransformRegressor
from repro.workloads.tpcds import build_tpcds_workload


@pytest.fixture(scope="module")
def tpch_test_plans(workload_split):
    _, test = workload_split
    return [query.plan for query in test]


@pytest.fixture(scope="module")
def tpcds_plans():
    workload = build_tpcds_workload(
        scale_factor=0.05, skew_z=0.8, n_queries=16, seed=5
    )
    return [query.plan for query in workload.queries]


@pytest.fixture(scope="module")
def fitted_mart(rng_matrix):
    features, targets = rng_matrix
    model = MARTRegressor(
        MARTConfig(n_iterations=30, max_leaves=8, learning_rate=0.12, subsample=0.8)
    )
    return model.fit(features, targets)


@pytest.fixture(scope="module")
def rng_matrix():
    rng = np.random.default_rng(17)
    features = rng.uniform(0.0, 1000.0, size=(400, 6))
    targets = features[:, 0] * 3.0 + features[:, 1] ** 1.5 + rng.normal(0, 5, 400)
    return features, targets


class TestWorkloadParity:
    """Flat kernel == node walk on every trained model over real plans."""

    def _family_matrices(self, estimator, plans):
        return {
            family: rows.matrix
            for family, rows in estimator._extractor.extract_plans(plans).items()
        }

    @pytest.mark.parametrize("resource", ["cpu", "io"])
    def test_model_level_parity_tpch(self, trained_estimator, tpch_test_plans, resource):
        matrices = self._family_matrices(trained_estimator, tpch_test_plans)
        checked = 0
        for (family, res), model_set in trained_estimator.model_sets.items():
            if res != resource or family not in matrices:
                continue
            for combined in [*model_set.models, model_set.default_model]:
                transformed = combined.transform_matrix(matrices[family])
                assert np.array_equal(
                    combined.model_.predict(transformed),
                    combined.model_.predict_per_tree(transformed),
                )
                checked += 1
        assert checked > 0

    @pytest.mark.parametrize("resource", ["cpu", "io"])
    def test_full_stack_parity_tpch(
        self, trained_estimator, tpch_test_plans, resource, monkeypatch
    ):
        flat = trained_estimator.estimate_workload(tpch_test_plans, (resource,))
        monkeypatch.setattr(MARTRegressor, "predict", MARTRegressor.predict_per_tree)
        walked = trained_estimator.estimate_workload(tpch_test_plans, (resource,))
        assert np.array_equal(flat.query_totals(resource), walked.query_totals(resource))
        assert flat.operator_estimates[resource] == walked.operator_estimates[resource]

    @pytest.mark.parametrize("resource", ["cpu", "io"])
    def test_full_stack_parity_tpcds(
        self, trained_estimator, tpcds_plans, resource, monkeypatch
    ):
        """Cross-schema: the TPC-H-trained models serve TPC-DS plans."""
        flat = trained_estimator.estimate_workload(tpcds_plans, (resource,))
        monkeypatch.setattr(MARTRegressor, "predict", MARTRegressor.predict_per_tree)
        walked = trained_estimator.estimate_workload(tpcds_plans, (resource,))
        assert np.array_equal(flat.query_totals(resource), walked.query_totals(resource))
        assert flat.operator_estimates[resource] == walked.operator_estimates[resource]


class TestEdgeCaseParity:
    def test_single_leaf_tree(self):
        forest = FlatForest.from_trees(
            [TreeNode(value=2.5)], learning_rate=0.1, init_=1.0, n_features=3
        )
        out = forest.predict(np.zeros((5, 3)))
        assert np.array_equal(out, np.full(5, 1.0 + 0.1 * 2.5))

    def test_all_rows_one_leaf(self):
        root = TreeNode(
            value=0.0,
            feature=0,
            threshold=10.0,
            left=TreeNode(value=-4.0),
            right=TreeNode(value=7.0),
        )
        forest = FlatForest.from_trees(
            [root], learning_rate=1.0, init_=0.0, n_features=2
        )
        left_only = np.full((64, 2), 3.0)
        right_only = np.full((64, 2), 100.0)
        assert np.array_equal(forest.predict(left_only), np.full(64, -4.0))
        assert np.array_equal(forest.predict(right_only), np.full(64, 7.0))

    def test_nan_and_inf_features_match_node_walk(self, fitted_mart, rng_matrix):
        features, _ = rng_matrix
        corrupted = features[:48].copy()
        corrupted[0, 0] = np.nan
        corrupted[1, :] = np.nan
        corrupted[2, 1] = np.inf
        corrupted[3, 2] = -np.inf
        assert np.array_equal(
            fitted_mart.predict(corrupted), fitted_mart.predict_per_tree(corrupted)
        )

    def test_deep_chain_tree_uses_fallback_router(self):
        # 15 internal levels exceeds the perfect-heap depth cap, exercising
        # the generic descent path.
        leaf_value = 100.0
        node = TreeNode(value=leaf_value)
        # Root tests threshold 0; rows descend right until x <= level.
        for level in reversed(range(15)):
            node = TreeNode(
                value=0.0,
                feature=0,
                threshold=float(level),
                left=TreeNode(value=float(level)),
                right=node,
            )
        forest = FlatForest.from_trees(
            [node], learning_rate=1.0, init_=0.0, n_features=1
        )
        assert forest._tree_depths().max() > 12
        x = np.array([[14.0], [3.0], [1e9], [np.nan]], dtype=np.float64)
        expected = np.array([14.0, 3.0, leaf_value, leaf_value])
        assert np.array_equal(forest.predict(x), expected)

    def test_transform_regressor_parity(self, rng_matrix):
        features, targets = rng_matrix
        model = TransformRegressor(n_iterations=20, max_leaves=5).fit(
            features, targets
        )
        assert np.array_equal(
            model.predict(features), model.predict_per_stage(features)
        )

    def test_transform_regressor_nan_parity(self, rng_matrix):
        features, targets = rng_matrix
        model = TransformRegressor(n_iterations=12, max_leaves=5).fit(
            features, targets
        )
        corrupted = features[:32].copy()
        corrupted[0, 0] = np.nan
        corrupted[5, :] = np.inf
        with np.errstate(invalid="ignore"):
            flat = model.predict(corrupted)
            staged = model.predict_per_stage(corrupted)
        assert np.array_equal(flat, staged, equal_nan=True)


class TestCompileRoundTrips:
    def test_decompile_recompile_identical(self, fitted_mart):
        forest = compile_mart(fitted_mart)
        rebuilt = FlatForest.from_trees(
            forest.tree_root_nodes(),
            learning_rate=forest.learning_rate,
            init_=forest.init_,
            n_features=forest.n_features,
        )
        assert np.array_equal(forest.feature_id, rebuilt.feature_id)
        assert np.array_equal(forest.threshold, rebuilt.threshold)
        assert np.array_equal(forest.left, rebuilt.left)
        assert np.array_equal(forest.right, rebuilt.right)
        assert np.array_equal(forest.leaf_value, rebuilt.leaf_value)
        assert np.array_equal(forest.tree_roots, rebuilt.tree_roots)

    def test_stats_sanity(self, fitted_mart):
        stats = compile_mart(fitted_mart).stats()
        assert stats.n_trees == fitted_mart.n_trees
        assert stats.n_leaves <= stats.n_trees * fitted_mart.config.max_leaves
        assert stats.n_nodes == 2 * stats.n_leaves - stats.n_trees
        assert stats.max_depth >= 1
        assert stats.array_bytes > 0
        assert "int32" in stats.dtype_summary

    def test_transform_leaf_models_survive_decompile(self, rng_matrix):
        features, targets = rng_matrix
        model = TransformRegressor(n_iterations=8, max_leaves=5).fit(features, targets)
        forest = compile_transform(model)
        rebuilt = FlatForest.from_trees(
            forest.tree_root_nodes(),
            learning_rate=forest.learning_rate,
            init_=forest.init_,
            n_features=forest.n_features,
            clip_negative=forest.clip_negative,
            leaf_models=forest.leaf_models_by_rank(),
        )
        assert np.array_equal(
            forest.predict(features, init=forest.init_, rate=forest.learning_rate),
            rebuilt.predict(features, init=forest.init_, rate=forest.learning_rate),
        )


class TestArtifactRoundTrips:
    @pytest.mark.parametrize("version", [1, 2])
    def test_legacy_versions_recompile_identically(
        self, trained_estimator, tpch_test_plans, version
    ):
        blob = estimator_to_bytes(trained_estimator, version=version)
        loaded = estimator_from_bytes(blob)
        for resource in ("cpu", "io"):
            assert np.array_equal(
                loaded.estimate_workload(tpch_test_plans, (resource,)).query_totals(
                    resource
                ),
                trained_estimator.estimate_workload(
                    tpch_test_plans, (resource,)
                ).query_totals(resource),
            )

    def test_v3_mmap_load_identical(self, trained_estimator, tpch_test_plans, tmp_path):
        path = tmp_path / "model_v3.bin"
        save_estimator(trained_estimator, path)
        mapped = load_estimator(path, mmap=True)
        plain = load_estimator(path)
        for resource in ("cpu", "io"):
            expected = trained_estimator.estimate_workload(
                tpch_test_plans, (resource,)
            ).query_totals(resource)
            assert np.array_equal(
                mapped.estimate_workload(tpch_test_plans, (resource,)).query_totals(
                    resource
                ),
                expected,
            )
            assert np.array_equal(
                plain.estimate_workload(tpch_test_plans, (resource,)).query_totals(
                    resource
                ),
                expected,
            )

    def test_service_from_artifact_mmap(self, trained_estimator, tpch_test_plans, tmp_path):
        path = tmp_path / "model_v3.bin"
        save_estimator(trained_estimator, path)
        service = EstimationService.from_artifact(path, mmap=True)
        direct = EstimationService.from_artifact(path)
        mapped_estimate = service.estimate_workload(tpch_test_plans)
        direct_estimate = direct.estimate_workload(tpch_test_plans)
        for resource in service.resources:
            assert np.array_equal(
                mapped_estimate.query_totals(resource),
                direct_estimate.query_totals(resource),
            )


class TestCacheInvalidation:
    def test_root_reassignment_invalidates_flat_cache(self, rng_matrix):
        features, targets = rng_matrix
        tree = RegressionTree(max_leaves=6).fit(features, targets)
        tree.predict(features)
        assert tree._flat_cache is not None
        tree.root = TreeNode(value=42.0)
        assert tree._flat_cache is None
        assert np.array_equal(tree.predict(features), np.full(features.shape[0], 42.0))

    def test_mart_trees_setter_invalidates_compiled(self, rng_matrix):
        features, targets = rng_matrix
        model = MARTRegressor(MARTConfig(n_iterations=5, max_leaves=4)).fit(
            features, targets
        )
        baseline = model.predict(features)
        single = RegressionTree(max_leaves=2)
        single.root = TreeNode(value=1.0)
        single.n_features_ = features.shape[1]
        trees = model.trees_
        model.trees_ = [single]
        changed = model.predict(features)
        expected = model.initial_prediction_ + model.config.learning_rate
        assert np.array_equal(changed, np.full(features.shape[0], expected))
        model.trees_ = trees
        assert np.array_equal(model.predict(features), baseline)
