"""Tests for true/estimated cardinality computation."""

from __future__ import annotations

import pytest

from repro.optimizer.cardinality import CardinalityModel
from repro.query.builders import conjunction, range_predicate
from repro.query.spec import AggregateSpec, JoinEdge, QuerySpec, TableRef

import numpy as np


@pytest.fixture(scope="module")
def model(tpch_catalog, statistics):
    return CardinalityModel(tpch_catalog, statistics)


class TestBaseAndFilter:
    def test_base_rows_match_catalog(self, model, tpch_catalog):
        assert model.base_rows("lineitem") == tpch_catalog.table("lineitem").row_count

    def test_unfiltered_reference_has_selectivity_one(self, model):
        ref = TableRef("orders")
        assert model.filter_selectivity(ref) == (1.0, 1.0)

    def test_filtered_rows_below_base_rows(self, model):
        rng = np.random.default_rng(0)
        ref = TableRef(
            "orders",
            predicates=conjunction(range_predicate(rng, "orders", "o_orderdate", 0.1, 0.2)),
        )
        true_rows, est_rows = model.filtered_rows(ref)
        assert 0 < true_rows < model.base_rows("orders")
        assert 0 < est_rows < model.base_rows("orders")


class TestJoinSelectivity:
    def test_selectivity_within_bounds(self, model):
        sel = model.join_selectivity("orders", "o_orderkey", "lineitem", "l_orderkey")
        assert 0.0 < sel.true <= 1.0
        assert 0.0 < sel.estimated <= 1.0

    def test_skewed_fk_join_larger_than_uniform_estimate(self, model):
        """Rank-aligned skewed joins produce more rows than 1/max(NDV)."""
        sel = model.join_selectivity("lineitem", "l_partkey", "partsupp", "ps_partkey")
        assert sel.true > sel.estimated

    def test_pk_fk_join_estimate_close_to_truth(self, model):
        """Joining a unique key is estimated accurately (both ~1/|parent|)."""
        sel = model.join_selectivity("orders", "o_orderkey", "lineitem", "l_orderkey")
        assert sel.true == pytest.approx(sel.estimated, rel=1.0)

    def test_symmetry_and_caching(self, model):
        a = model.join_selectivity("orders", "o_custkey", "customer", "c_custkey")
        b = model.join_selectivity("customer", "c_custkey", "orders", "o_custkey")
        assert a is b  # the cache stores both directions


class TestGroupCount:
    def _query(self) -> QuerySpec:
        return QuerySpec(
            name="g",
            tables=[TableRef("lineitem")],
            aggregate=AggregateSpec(group_by={"lineitem": ["l_returnflag", "l_linestatus"]}),
        )

    def test_groups_bounded_by_domain_and_input(self, model):
        true_groups, est_groups = model.group_count(self._query(), 10_000, 10_000)
        assert 1.0 <= true_groups <= 6.0  # 3 return flags x 2 statuses
        assert 1.0 <= est_groups <= 6.0

    def test_scalar_aggregate_returns_one_group(self, model):
        query = QuerySpec(
            name="s", tables=[TableRef("lineitem")], aggregate=AggregateSpec(group_by={})
        )
        assert model.group_count(query, 1000, 1000) == (1.0, 1.0)

    def test_tiny_input_limits_groups(self, model):
        true_groups, _ = model.group_count(self._query(), 2, 2)
        assert true_groups <= 2.0


def test_plan_level_estimation_error_grows_with_join_depth(planner, tpch_queries):
    """Deep plans accumulate more cardinality-estimation error on average."""
    shallow_errors, deep_errors = [], []
    for query in tpch_queries:
        plan = planner.plan(query)
        root = plan.root
        error = abs(np.log10(max(root.est_rows, 1.0)) - np.log10(max(root.true_rows, 1.0)))
        if query.n_joins <= 1:
            shallow_errors.append(error)
        elif query.n_joins >= 3:
            deep_errors.append(error)
    if shallow_errors and deep_errors:
        assert float(np.mean(deep_errors)) >= float(np.mean(shallow_errors)) * 0.5
